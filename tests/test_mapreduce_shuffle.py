"""Unit tests for the shuffle store and count annotations."""

import pytest

from repro.errors import ShuffleError
from repro.mapreduce.shuffle import MapOutputFile, ShuffleStore
from repro.mapreduce.types import MapTaskId


def mk_file(map_idx, part, records, source=None):
    return MapOutputFile(
        map_id=MapTaskId(map_idx),
        partition=part,
        records=tuple(records),
        source_records=len(records) if source is None else source,
    )


class TestMapOutputFile:
    def test_sorted_required(self):
        with pytest.raises(ShuffleError):
            mk_file(0, 0, [((2,), 1), ((1,), 1)])

    def test_negative_source_rejected(self):
        with pytest.raises(ShuffleError):
            mk_file(0, 0, [((1,), 1)], source=-1)

    def test_negative_partition_rejected(self):
        with pytest.raises(ShuffleError):
            mk_file(0, -1, [])

    def test_annotation_survives_combining(self):
        """A combined file has fewer records than source records — the
        §3.2.1 ambiguity the annotation resolves."""
        f = mk_file(0, 0, [((1,), [10, 20])], source=2)
        assert f.num_records == 1
        assert f.source_records == 2


class TestShuffleStore:
    def test_spill_and_fetch(self):
        store = ShuffleStore()
        store.spill([mk_file(0, 1, [((1,), "a")])])
        got = store.fetch(0, 1)
        assert got.records == (((1,), "a"),)

    def test_double_spill_rejected(self):
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [])])
        with pytest.raises(ShuffleError):
            store.spill([mk_file(0, 1, [])])

    def test_mixed_map_spill_rejected(self):
        store = ShuffleStore()
        with pytest.raises(ShuffleError):
            store.spill([mk_file(0, 0, []), mk_file(1, 0, [])])

    def test_fetch_before_completion_rejected(self):
        store = ShuffleStore()
        with pytest.raises(ShuffleError):
            store.fetch(0, 0)

    def test_connection_counting_includes_empty(self):
        """Fetching from a map with no data for you still costs a
        connection — the waste §4.6 quantifies."""
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), 1)])])
        store.spill_empty(MapTaskId(1))
        store.fetch(0, 0)
        store.fetch(0, 5)   # wrong partition: empty fetch
        store.fetch(1, 0)   # empty map: empty fetch
        assert store.connections == 3
        assert store.empty_fetches == 2

    def test_index_tracks_nonempty_partitions(self):
        store = ShuffleStore()
        store.spill(
            [mk_file(2, 0, [((1,), 1)]), mk_file(2, 3, [])]
        )
        idx = store.index_of(2)
        assert idx.partitions == frozenset({0})
        assert idx.records_per_partition == {0: 1, 3: 0}

    def test_completed_maps(self):
        store = ShuffleStore()
        store.spill_empty(MapTaskId(4))
        assert store.completed_maps() == frozenset({4})

    def test_source_record_tally(self):
        """The reduce-side running tally of §3.2.1 approach 2."""
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), "x")], source=4)])
        store.spill([mk_file(1, 0, [((1,), "y")], source=3)])
        store.spill([mk_file(2, 1, [((2,), "z")], source=9)])
        assert store.total_source_records(frozenset({0, 1}), 0) == 7
        assert store.total_source_records(None, 0) == 7
        assert store.total_source_records(None, 1) == 9

    def test_tally_requires_completed_maps(self):
        store = ShuffleStore()
        with pytest.raises(ShuffleError):
            store.total_source_records(frozenset({0}), 0)


class TestAttemptAwareStore:
    """Attempt-based spill commit + consume-on-fetch (no-persist mode)."""

    def test_higher_attempt_supersedes(self):
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), "old")])])
        store.spill([mk_file(0, 0, [((1,), "new")])], attempt=1)
        assert store.attempt_of(0) == 1
        assert store.fetch(0, 0).records == (((1,), "new"),)

    def test_supersede_drops_stale_partitions(self):
        """A retry that emits fewer partitions must not leave the old
        attempt's files behind for the missing ones."""
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), "a")]), mk_file(0, 1, [((2,), "b")])])
        store.spill([mk_file(0, 0, [((1,), "a2")])], attempt=1)
        assert store.fetch(0, 1) is None  # old partition-1 file is gone

    def test_same_attempt_respill_rejected(self):
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [])], attempt=2)
        with pytest.raises(ShuffleError):
            store.spill([mk_file(0, 0, [])], attempt=2)
        with pytest.raises(ShuffleError):
            store.spill([mk_file(0, 0, [])], attempt=1)

    def test_consume_on_fetch_when_not_persisted(self):
        store = ShuffleStore(persist=False)
        store.spill([mk_file(0, 0, [((1,), "x")])])
        assert store.fetch(0, 0).records == (((1,), "x"),)
        assert store.missing_inputs(0, frozenset({0})) == frozenset({0})

    def test_persisted_fetch_is_repeatable(self):
        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), "x")])])
        store.fetch(0, 0)
        assert store.fetch(0, 0).records == (((1,), "x"),)
        assert store.missing_inputs(0, frozenset({0})) == frozenset()

    def test_stale_fetch_detected(self):
        from repro.errors import StaleFetchError

        store = ShuffleStore()
        store.spill([mk_file(0, 0, [((1,), "v0")])])
        store.begin_reduce_attempt(0)
        store.fetch(0, 0)
        store.check_fetch_fresh(0)  # fresh so far
        store.spill([mk_file(0, 0, [((1,), "v1")])], attempt=1)
        with pytest.raises(StaleFetchError):
            store.check_fetch_fresh(0)
        # A new attempt re-fetches the superseded map and is fresh again.
        store.begin_reduce_attempt(0)
        store.fetch(0, 0)
        store.check_fetch_fresh(0)

    def test_missing_inputs_ignores_empty_partitions(self):
        """A map that produced nothing for this partition never needs
        re-execution, consumed or not."""
        store = ShuffleStore(persist=False)
        store.spill([mk_file(0, 1, [((1,), "x")])])  # nothing for part 0
        assert store.missing_inputs(0, frozenset({0})) == frozenset()


class TestSpillMetrics:
    def test_spill_empty_counts_index_file(self):
        """Regression: ``spill_empty`` used to bypass the
        ``shuffle.spill.files`` counter entirely."""
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        store = ShuffleStore(metrics=m)
        store.spill_empty(MapTaskId(0))
        assert m.counter("shuffle.spill.files").value == 1
        store.spill([mk_file(1, 0, [((1,), 1)]), mk_file(1, 1, [])])
        assert m.counter("shuffle.spill.files").value == 3

    def test_superseded_spills_counted(self):
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        store = ShuffleStore(metrics=m)
        store.spill([mk_file(0, 0, [])])
        store.spill([mk_file(0, 0, [])], attempt=1)
        assert m.counter("shuffle.spill.superseded").value == 1
