"""Unit and property tests for extraction shapes (K -> K' translation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.extraction import ExtractionShape, StridedExtraction
from repro.arrays.slab import Slab
from repro.errors import GeometryError, QueryError, RankMismatchError


class TestPaperExamples:
    """The worked examples from paper §3."""

    def test_weekly_downsample_key(self):
        # "an arbitrary key in K, say {157, 34, 82}, maps to {22, 6, 82}"
        ex = ExtractionShape((7, 5, 1))
        assert ex.translate((157, 34, 82)) == (22, 6, 82)

    def test_weekly_downsample_space(self):
        # {365, 250, 200} with {7, 5, 1} -> {52, 50, 200}, day 365 dropped
        ex = ExtractionShape((7, 5, 1))
        assert ex.intermediate_space((365, 250, 200)) == (52, 50, 200)

    def test_query1_space(self):
        # {7200, 360, 720, 50} with {2, 36, 36, 10} -> {3600, 10, 20, 5}
        ex = ExtractionShape((2, 36, 36, 10))
        assert ex.intermediate_space((7200, 360, 720, 50)) == (3600, 10, 20, 5)

    def test_query2_space(self):
        ex = ExtractionShape((2, 40, 40, 10))
        assert ex.intermediate_space((7200, 360, 720, 50)) == (3600, 9, 18, 5)


class TestConstruction:
    def test_nonpositive_shape_rejected(self):
        with pytest.raises(GeometryError):
            ExtractionShape((0, 1))

    def test_origin_rank_mismatch(self):
        with pytest.raises(RankMismatchError):
            ExtractionShape((2, 2), origin=(0,))

    def test_cells_per_key(self):
        assert ExtractionShape((2, 3, 4)).cells_per_key == 24


class TestTranslate:
    def test_with_origin(self):
        ex = ExtractionShape((2, 2), origin=(10, 10))
        assert ex.translate((10, 10)) == (0, 0)
        assert ex.translate((13, 11)) == (1, 0)

    def test_before_origin_raises(self):
        ex = ExtractionShape((2, 2), origin=(10, 10))
        with pytest.raises(GeometryError):
            ex.translate((9, 10))

    def test_translate_many_matches_scalar(self):
        ex = ExtractionShape((3, 2), origin=(1, 1))
        keys = np.array([[1, 1], [4, 3], [7, 8]])
        got = ex.translate_many(keys)
        want = [ex.translate(tuple(k)) for k in keys]
        assert [tuple(g) for g in got] == want

    @given(st.data())
    @settings(max_examples=150)
    def test_preimage_roundtrip(self, data):
        rank = data.draw(st.integers(1, 4))
        shape = tuple(data.draw(st.integers(1, 5)) for _ in range(rank))
        ex = ExtractionShape(shape)
        key = tuple(data.draw(st.integers(0, 8)) for _ in range(rank))
        pre = ex.preimage(key)
        # Every cell in the preimage translates back to the key.
        for c in pre.iter_coords():
            assert ex.translate(c) == key


class TestImage:
    def test_single_instance(self):
        ex = ExtractionShape((2, 2))
        img = ex.image(Slab((0, 0), (2, 2)))
        assert img == Slab((0, 0), (1, 1))

    def test_straddling_region(self):
        ex = ExtractionShape((2, 2))
        img = ex.image(Slab((1, 1), (2, 2)))
        assert img == Slab((0, 0), (2, 2))

    def test_clipped_to_intermediate_space(self):
        ex = ExtractionShape((2,))
        img = ex.image(Slab((4,), (3,)), intermediate_space=(3,))
        assert img == Slab((2,), (1,))

    def test_empty_region(self):
        ex = ExtractionShape((2, 2))
        assert ex.image(Slab((0, 0), (0, 2))).is_empty

    @given(st.data())
    @settings(max_examples=150)
    def test_image_is_exact(self, data):
        """Every key in the image has a preimage cell in the region and
        every region cell's key is in the image."""
        rank = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 4)) for _ in range(rank))
        ex = ExtractionShape(shape)
        corner = tuple(data.draw(st.integers(0, 6)) for _ in range(rank))
        extent = tuple(data.draw(st.integers(1, 5)) for _ in range(rank))
        region = Slab(corner, extent)
        img = ex.image(region)
        for c in region.iter_coords():
            assert img.contains(ex.translate(c))
        for k in img.iter_coords():
            assert ex.preimage(k).overlaps(region)


class TestIntermediateSpace:
    def test_truncate_vs_keep(self):
        assert ExtractionShape((3,)).intermediate_space((10,)) == (3,)
        assert ExtractionShape((3,), truncate=False).intermediate_space((10,)) == (4,)

    def test_too_large_extraction_raises(self):
        with pytest.raises(QueryError):
            ExtractionShape((5, 5)).intermediate_space((4, 10))

    def test_covered_input(self):
        ex = ExtractionShape((7, 5, 1))
        cov = ex.covered_input((365, 250, 200))
        assert cov == Slab((0, 0, 0), (364, 250, 200))


class TestStrided:
    def test_stride_must_dominate_shape(self):
        with pytest.raises(GeometryError):
            StridedExtraction((3,), (2,))

    def test_translate_in_instance(self):
        ex = StridedExtraction((2,), (4,))
        assert ex.translate((0,)) == (0,)
        assert ex.translate((1,)) == (0,)
        assert ex.translate((4,)) == (1,)

    def test_translate_in_gap(self):
        ex = StridedExtraction((2,), (4,))
        assert ex.translate((2,)) is None
        assert ex.translate((3,)) is None

    def test_translate_many_mask(self):
        ex = StridedExtraction((2,), (4,))
        keys = np.array([[0], [1], [2], [3], [4], [5], [6]])
        kp, mask = ex.translate_many(keys)
        assert mask.tolist() == [True, True, False, False, True, True, False]
        assert kp[mask][:, 0].tolist() == [0, 0, 1, 1]

    def test_intermediate_space_truncate(self):
        # instances at 0..1, 4..5, 8..9 fit in 10 cells -> 3
        assert StridedExtraction((2,), (4,)).intermediate_space((10,)) == (3,)
        # 9 cells: instance at 8..9 does not complete -> 2
        assert StridedExtraction((2,), (4,)).intermediate_space((9,)) == (2,)

    def test_preimage(self):
        ex = StridedExtraction((2, 1), (4, 2))
        assert ex.preimage((1, 2)) == Slab((4, 4), (2, 1))

    @given(st.data())
    @settings(max_examples=120)
    def test_image_superset_of_produced_keys(self, data):
        rank = data.draw(st.integers(1, 2))
        shape = tuple(data.draw(st.integers(1, 3)) for _ in range(rank))
        stride = tuple(
            data.draw(st.integers(s, s + 3)) for s in shape
        )
        ex = StridedExtraction(shape, stride)
        corner = tuple(data.draw(st.integers(0, 5)) for _ in range(rank))
        extent = tuple(data.draw(st.integers(1, 6)) for _ in range(rank))
        region = Slab(corner, extent)
        img = ex.image(region)
        for c in region.iter_coords():
            k = ex.translate(c)
            if k is not None:
                assert img.contains(k), (c, k, img)

    @given(st.data())
    @settings(max_examples=120)
    def test_gap_cells_have_no_key(self, data):
        shape = (data.draw(st.integers(1, 3)),)
        stride = (shape[0] + data.draw(st.integers(1, 3)),)
        ex = StridedExtraction(shape, stride)
        x = data.draw(st.integers(0, 30))
        k = ex.translate((x,))
        phase = x % stride[0]
        if phase < shape[0]:
            assert k == (x // stride[0],)
        else:
            assert k is None
