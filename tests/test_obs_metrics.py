"""Unit tests for counters/gauges/histograms (repro.obs.metrics)."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
)


class TestCounter:
    def test_increments(self):
        c = MetricsRegistry().counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ObservabilityError):
            c.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_add_moves_up_and_down(self):
        g = MetricsRegistry().gauge("inflight")
        assert g.add(1) == 1.0
        assert g.add(2) == 3.0
        assert g.add(-3) == 0.0
        assert g.value == 0.0


class TestHistogram:
    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", (1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", ())

    def test_observe_and_stats(self):
        h = Histogram("h", (1.0, 10.0, 100.0))
        h.observe_many([0.5, 5.0, 50.0, 500.0])
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 1, 1]  # last slot = overflow
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0
        assert h.mean() == pytest.approx(555.5 / 4)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        h.observe_many([0.5] * 9 + [3.0])
        # Median lands in the first bucket: 9 observations spanning
        # [min=0.5, bound=1.0], rank 5 of 9 interpolates to 0.5 + 0.5*5/9.
        assert h.quantile(0.5) == pytest.approx(0.5 + 0.5 * 5 / 9)
        # The top quantile clamps to the observed maximum, not the
        # (looser) bucket upper bound.
        assert h.quantile(1.0) == 3.0
        h.observe(99.0)  # overflow bucket spans [last bound, max]
        assert h.quantile(1.0) == 99.0
        assert h.quantile(0.0) == 0.5  # bottom clamps to the minimum
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_quantile_exact_at_bucket_edges(self):
        h = Histogram("h", (1.0, 2.0))
        h.observe_many([1.0] * 4 + [2.0] * 4)
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_histogram_quantile_on_snapshot(self):
        from repro.obs import histogram_quantile

        h = Histogram("h", (1.0, 2.0, 4.0))
        h.observe_many([0.5] * 9 + [3.0])
        snap = h.snapshot()
        # The module-level helper (used by the report renderer on
        # exported snapshots) agrees with the live object.
        assert histogram_quantile(snap, 0.5) == h.quantile(0.5)
        assert histogram_quantile(snap, 0.95) == h.quantile(0.95)
        assert histogram_quantile({"count": 0}, 0.5) == 0.0

    def test_empty_snapshot(self):
        h = Histogram("h", (1.0,))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert h.quantile(0.9) == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h", TIME_BUCKETS) is m.histogram("h", TIME_BUCKETS)

    def test_type_clash_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ObservabilityError):
            m.gauge("x")
        with pytest.raises(ObservabilityError):
            m.histogram("x")

    def test_bucket_mismatch_rejected(self):
        m = MetricsRegistry()
        m.histogram("h", TIME_BUCKETS)
        with pytest.raises(ObservabilityError):
            m.histogram("h", COUNT_BUCKETS)

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc(2)
        m.gauge("g").set(1.0)
        m.histogram("h", (1.0,)).observe(0.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_sums_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.histogram("h", (1.0, 2.0)).observe_many([0.5, 1.5])
        b.histogram("h", (1.0, 2.0)).observe_many([0.5, 9.0])
        b.gauge("g").set(7.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 4
        assert h["counts"] == [2, 1, 1]
        assert h["min"] == 0.5 and h["max"] == 9.0
        assert snap["gauges"]["g"] == 7.0

    def test_merge_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError):
            a.merge(b)


class TestThreadSafety:
    def test_concurrent_updates_lossless(self):
        m = MetricsRegistry()
        n_threads, per_thread = 8, 1000

        def work():
            c = m.counter("hits")
            h = m.histogram("lat", TIME_BUCKETS)
            for _ in range(per_thread):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("hits").value == n_threads * per_thread
        assert m.histogram("lat", TIME_BUCKETS).count == n_threads * per_thread
