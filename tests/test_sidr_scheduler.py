"""Unit tests for the SIDR scheduling policy (§3.3, §3.4)."""

import pytest

from repro.errors import SchedulerError
from repro.sidr.dependencies import DependencyMap
from repro.sidr.scheduler import SidrSchedulePolicy


def simple_deps():
    return DependencyMap(
        num_splits=6,
        num_blocks=3,
        producers=(
            frozenset({0}),
            frozenset({0}),
            frozenset({1}),
            frozenset({1}),
            frozenset({2}),
            frozenset({2}),
        ),
        dependencies=(
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4, 5}),
        ),
    )


class TestReduceOrder:
    def test_default_index_order(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        assert p.reduce_schedule_order() == [0, 1, 2]

    def test_priority_order(self):
        p = SidrSchedulePolicy(deps=simple_deps(), priorities=[2.0, 0.0, 1.0])
        assert p.reduce_schedule_order() == [1, 2, 0]

    def test_priority_ties_break_by_index(self):
        p = SidrSchedulePolicy(deps=simple_deps(), priorities=[1.0, 1.0, 0.0])
        assert p.reduce_schedule_order() == [2, 0, 1]

    def test_priority_length_checked(self):
        with pytest.raises(SchedulerError):
            SidrSchedulePolicy(deps=simple_deps(), priorities=[1.0])


class TestEligibility:
    def test_maps_ineligible_until_reduce_scheduled(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        assert not p.is_map_eligible(0)
        newly = p.on_reduce_scheduled(0)
        assert newly == frozenset({0, 1})
        assert p.is_map_eligible(0) and p.is_map_eligible(1)
        assert not p.is_map_eligible(2)

    def test_shared_maps_marked_once(self):
        deps = DependencyMap(
            num_splits=2,
            num_blocks=2,
            producers=(frozenset({0, 1}), frozenset({0, 1})),
            dependencies=(frozenset({0, 1}), frozenset({0, 1})),
        )
        p = SidrSchedulePolicy(deps=deps)
        assert p.on_reduce_scheduled(0) == frozenset({0, 1})
        assert p.on_reduce_scheduled(1) == frozenset()

    def test_double_reduce_schedule_rejected(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        p.on_reduce_scheduled(0)
        with pytest.raises(SchedulerError):
            p.on_reduce_scheduled(0)

    def test_unknown_block_rejected(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        with pytest.raises(SchedulerError):
            p.on_reduce_scheduled(7)


class TestMapScheduling:
    def test_ineligible_map_rejected(self):
        """The central §3.3 invariant: a map may run only when a running
        reduce depends on it."""
        p = SidrSchedulePolicy(deps=simple_deps())
        with pytest.raises(SchedulerError):
            p.on_map_scheduled(0)

    def test_eligible_map_accepted_once(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        p.on_reduce_scheduled(0)
        p.on_map_scheduled(0)
        with pytest.raises(SchedulerError):
            p.on_map_scheduled(0)
        assert p.scheduled_maps == frozenset({0})

    def test_eligible_unscheduled_tracking(self):
        p = SidrSchedulePolicy(deps=simple_deps())
        p.on_reduce_scheduled(1)
        assert p.eligible_unscheduled_maps() == frozenset({2, 3})
        p.on_map_scheduled(2)
        assert p.eligible_unscheduled_maps() == frozenset({3})

    def test_full_schedule_walkthrough(self):
        """Scheduling all reduces makes all maps eligible exactly once."""
        p = SidrSchedulePolicy(deps=simple_deps())
        marked = set()
        for l in p.reduce_schedule_order():
            marked |= p.on_reduce_scheduled(l)
        assert marked == set(range(6))
        assert p.scheduled_reduces == frozenset({0, 1, 2})


class TestSchedulerMetrics:
    def test_decisions_counted(self):
        from repro.obs import MetricsRegistry

        m = MetricsRegistry()
        p = SidrSchedulePolicy(deps=simple_deps(), metrics=m)
        for l in p.reduce_schedule_order():
            p.on_reduce_scheduled(l)
        for i in range(6):
            p.on_map_scheduled(i)
        c = m.snapshot()["counters"]
        assert c["sched.reduce.scheduled"] == 3
        assert c["sched.maps.unlocked"] == 6
        assert c["sched.map.scheduled"] == 6

    def test_plan_threads_metrics_through(self):
        from repro.obs import MetricsRegistry
        from repro.query.language import StructuralQuery
        from repro.query.operators import MeanOp
        from repro.query.splits import slice_splits
        from repro.scidata.generators import temperature_dataset
        from repro.sidr.planner import build_plan

        field = temperature_dataset(days=14, lat=10, lon=6)
        plan = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=MeanOp(),
        ).compile(field.metadata)
        splits = slice_splits(plan, num_splits=4)
        sidr = build_plan(plan, splits, 2)
        m = MetricsRegistry()
        policy = sidr.schedule_policy(metrics=m)
        policy.on_reduce_scheduled(0)
        assert m.snapshot()["counters"]["sched.reduce.scheduled"] == 1
