"""Unit tests for the simulated HDFS substrate."""

import random

import pytest

from repro.dfs.block import Block, BlockId
from repro.dfs.filesystem import SimulatedDFS
from repro.dfs.namenode import DefaultPlacement, NameNode, RandomPlacement
from repro.dfs.topology import ClusterTopology, Host, LocalityLevel
from repro.errors import DfsError


class TestTopology:
    def test_uniform(self):
        t = ClusterTopology.uniform(24, hosts_per_rack=8)
        assert len(t) == 24
        assert len(t.racks) == 3

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(DfsError):
            ClusterTopology([Host("a", "r0"), Host("a", "r0")])

    def test_distance(self):
        t = ClusterTopology.uniform(16, hosts_per_rack=8)
        names = t.host_names
        assert t.distance(names[0], names[0]) == LocalityLevel.NODE_LOCAL
        assert t.distance(names[0], names[1]) == LocalityLevel.RACK_LOCAL
        assert t.distance(names[0], names[8]) == LocalityLevel.OFF_RACK

    def test_best_locality(self):
        t = ClusterTopology.uniform(16, hosts_per_rack=8)
        n = t.host_names
        assert t.best_locality(n[0], (n[8], n[0])) == LocalityLevel.NODE_LOCAL
        assert t.best_locality(n[0], ()) == LocalityLevel.OFF_RACK

    def test_unknown_host(self):
        t = ClusterTopology.uniform(4)
        with pytest.raises(DfsError):
            t.host("nope")


class TestBlock:
    def test_validation(self):
        with pytest.raises(DfsError):
            Block(BlockId("/f", 0), 0, 0, ("a",))
        with pytest.raises(DfsError):
            Block(BlockId("/f", 0), 0, 10, ())
        with pytest.raises(DfsError):
            Block(BlockId("/f", 0), 0, 10, ("a", "a"))

    def test_overlaps_range(self):
        b = Block(BlockId("/f", 1), 100, 50, ("a",))
        assert b.overlaps_range(120, 10)
        assert b.overlaps_range(90, 20)
        assert not b.overlaps_range(150, 10)
        assert not b.overlaps_range(0, 100)


class TestPlacement:
    def test_default_policy_shape(self):
        t = ClusterTopology.uniform(24, hosts_per_rack=8)
        rng = random.Random(0)
        for _ in range(50):
            writer = rng.choice(t.host_names)
            replicas = DefaultPlacement().place(t, writer, 3, rng)
            assert len(set(replicas)) == 3
            assert replicas[0] == writer
            # Second replica off the writer's rack; third on its rack.
            assert t.rack_of(replicas[1]) != t.rack_of(replicas[0])
            assert t.rack_of(replicas[2]) == t.rack_of(replicas[1])

    def test_replication_capped_by_cluster(self):
        t = ClusterTopology.uniform(2, hosts_per_rack=1)
        nn = NameNode(t, replication=5)
        entry = nn.create_file("/f", 10)
        assert len(entry.blocks[0].replicas) <= 2

    def test_random_policy_distinct(self):
        t = ClusterTopology.uniform(8)
        got = RandomPlacement().place(t, t.host_names[0], 3, random.Random(1))
        assert len(set(got)) == 3


class TestNameNode:
    def test_block_slicing(self):
        t = ClusterTopology.uniform(4)
        nn = NameNode(t, block_size=100)
        entry = nn.create_file("/f", 250)
        assert [b.length for b in entry.blocks] == [100, 100, 50]
        assert [b.offset for b in entry.blocks] == [0, 100, 200]

    def test_duplicate_file(self):
        t = ClusterTopology.uniform(4)
        nn = NameNode(t, block_size=100)
        nn.create_file("/f", 10)
        with pytest.raises(DfsError):
            nn.create_file("/f", 10)

    def test_blocks_for_range(self):
        t = ClusterTopology.uniform(4)
        nn = NameNode(t, block_size=100)
        nn.create_file("/f", 300)
        got = nn.blocks_for_range("/f", 50, 100)
        assert [b.block_id.index for b in got] == [0, 1]

    def test_range_out_of_file(self):
        t = ClusterTopology.uniform(4)
        nn = NameNode(t, block_size=100)
        nn.create_file("/f", 100)
        with pytest.raises(DfsError):
            nn.blocks_for_range("/f", 50, 100)

    def test_deterministic_given_seed(self):
        t = ClusterTopology.uniform(8)
        a = NameNode(t, seed=42).create_file("/f", 1000)
        b = NameNode(t, seed=42).create_file("/f", 1000)
        assert [x.replicas for x in a.blocks] == [x.replicas for x in b.blocks]


class TestSimulatedDFS:
    def test_paper_configuration(self):
        dfs = SimulatedDFS()
        assert len(dfs.hosts) == 24
        assert dfs.block_size == 128 * 1024 * 1024

    def test_hosts_for_range_ranked_by_coverage(self):
        dfs = SimulatedDFS(num_hosts=6, block_size=100, seed=1)
        dfs.add_file("/f", 1000)
        hosts = dfs.hosts_for_range("/f", 0, 500)
        assert hosts  # someone holds the data
        fractions = [dfs.local_fraction("/f", 0, 500, h) for h in hosts]
        assert fractions == sorted(fractions, reverse=True)

    def test_local_fraction_bounds(self):
        dfs = SimulatedDFS(num_hosts=6, block_size=100, seed=1)
        dfs.add_file("/f", 300)
        for h in dfs.hosts:
            f = dfs.local_fraction("/f", 0, 300, h)
            assert 0.0 <= f <= 1.0

    def test_replica_holder_has_full_block_fraction(self):
        dfs = SimulatedDFS(num_hosts=6, block_size=100, seed=2)
        dfs.add_file("/f", 100)
        block = dfs.blocks("/f")[0]
        assert dfs.local_fraction("/f", 0, 100, block.replicas[0]) == 1.0

    def test_best_locality_for_range(self):
        dfs = SimulatedDFS(num_hosts=6, block_size=100, seed=3)
        dfs.add_file("/f", 100)
        block = dfs.blocks("/f")[0]
        lvl = dfs.best_locality_for_range("/f", 0, 100, block.replicas[0])
        assert lvl == LocalityLevel.NODE_LOCAL

    def test_file_lookup(self):
        dfs = SimulatedDFS(num_hosts=4, block_size=100)
        dfs.add_file("/f", 250)
        f = dfs.file("/f")
        assert f.num_blocks == 3
        with pytest.raises(DfsError):
            dfs.file("/nope")
