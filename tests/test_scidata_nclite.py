"""Unit tests for the NCLite binary format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.scidata.metadata import simple_metadata
from repro.scidata.nclite import (
    NCLITE_MAGIC,
    encode_header,
    read_header,
    write_nclite,
    write_nclite_empty,
)


@pytest.fixture
def meta2var():
    from repro.scidata.metadata import DatasetMetadata, Dimension, Variable

    return DatasetMetadata(
        dimensions=(Dimension("x", 3), Dimension("y", 4)),
        variables=(
            Variable("a", "double", ("x", "y")),
            Variable("b", "int", ("y",)),
        ),
    )


class TestHeader:
    def test_offsets_sequential(self, meta2var):
        _, rel = encode_header(meta2var)
        assert rel["a"] == 0
        assert rel["b"] == 3 * 4 * 8

    def test_roundtrip(self, tmp_path, meta2var):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.arange(4, dtype=np.int32),
        }
        path = tmp_path / "f.nc"
        write_nclite(path, meta2var, arrays)
        h = read_header(path)
        assert h.metadata == meta2var
        assert h.offsets["b"] - h.offsets["a"] == 96


class TestWrite:
    def test_missing_variable(self, tmp_path, meta2var):
        with pytest.raises(FormatError):
            write_nclite(tmp_path / "f.nc", meta2var, {"a": np.zeros((3, 4))})

    def test_wrong_shape(self, tmp_path, meta2var):
        with pytest.raises(FormatError):
            write_nclite(
                tmp_path / "f.nc",
                meta2var,
                {"a": np.zeros((4, 3)), "b": np.zeros(4, dtype=np.int32)},
            )

    def test_no_tmp_file_left_behind(self, tmp_path, meta2var):
        arrays = {
            "a": np.zeros((3, 4)),
            "b": np.zeros(4, dtype=np.int32),
        }
        write_nclite(tmp_path / "f.nc", meta2var, arrays)
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_empty_fill(self, tmp_path):
        meta = simple_metadata("v", (10, 10), dtype="double")
        path = tmp_path / "e.nc"
        write_nclite_empty(path, meta, fill=7.5)
        from repro.scidata.dataset import open_dataset

        with open_dataset(path) as ds:
            assert np.all(ds.read_all("v") == 7.5)


class TestCorruption:
    def _write_one(self, tmp_path):
        meta = simple_metadata("v", (4,), dtype="double")
        path = tmp_path / "v.nc"
        write_nclite(path, meta, {"v": np.arange(4.0)})
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError, match="magic"):
            read_header(path)

    def test_truncated_payload(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])
        with pytest.raises(FormatError, match="mismatch"):
            read_header(path)

    def test_truncated_header(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(NCLITE_MAGIC) + 2])
        with pytest.raises(FormatError):
            read_header(path)

    def test_garbage_json(self, tmp_path):
        path = self._write_one(tmp_path)
        raw = bytearray(path.read_bytes())
        # Clobber the first JSON byte.
        raw[len(NCLITE_MAGIC) + 4] = ord("!")
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            read_header(path)
