"""Smoke tests: every example script runs to completion.

Each example carries its own internal assertions (oracle comparisons),
so a clean exit is a meaningful check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_ARGS = {
    "windspeed_median_sim.py": ["--fast"],
}


def run_example(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)] + FAST_ARGS.get(name, []),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "name",
    sorted(p.name for p in EXAMPLES.glob("*.py")),
)
def test_example_runs(name):
    res = run_example(name)
    assert res.returncode == 0, res.stderr[-2000:]
    assert res.stdout.strip(), "example produced no output"


def test_quickstart_shows_the_headline_numbers():
    res = run_example("quickstart.py")
    assert "match the serial oracle" in res.stdout
    assert "shuffle connections" in res.stdout
    assert "Contiguous output regions" in res.stdout


def test_skew_example_reproduces_pathology():
    res = run_example("skew_pathology.py")
    assert "receiving NOTHING" in res.stdout
    # Half the reduce tasks starve (11 of 22).
    assert "[0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]" in res.stdout


def test_pipeline_example_shows_interleaving():
    res = run_example("pipelined_stages.py")
    assert "BEFORE" in res.stdout
    assert "STAGE2 map" in res.stdout
