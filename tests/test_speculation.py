"""Speculative execution: hang detection, hedged races, cancellation,
deadlines — units through full engine round-trips."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    JobConfigError,
    JobFailedError,
    TaskCancelledError,
)
from repro.faults import FaultKind, FaultRule, InjectionPlan
from repro.mapreduce.engine import (
    HOOK_POINTS,
    HOOK_SPECULATE,
    LocalEngine,
    RetryPolicy,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import IdentityMapper
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.reducer import FunctionReducer
from repro.mapreduce.splits import ByteRangeSplit
from repro.obs.live.bus import (
    EV_TASK_HANG,
    EV_TASK_HEARTBEAT,
    EV_TASK_START,
    EventBus,
)
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp
from repro.query.splits import slice_splits
from repro.scidata.generators import temperature_dataset
from repro.sidr.planner import build_sidr_job
from repro.spec import (
    REASON_HANG,
    REASON_SUPERSEDED,
    CancelToken,
    HangDetector,
    Heartbeat,
    SpeculationPolicy,
    structural_priority,
)
from repro.verify import (
    ChaosHook,
    check_interleaving_invariants,
)
from repro.verify.cases import FuzzCase
from repro.verify.fuzz import run_case

FAST = SpeculationPolicy(hang_timeout=0.08, heartbeat_interval=0.01)


def hang_plan(task="map", index=1, times=1):
    return InjectionPlan(
        rules=(
            FaultRule(
                task=task,
                kind=FaultKind.HANG,
                indices=frozenset({index}),
                times=times,
            ),
        )
    )


def counting_job(num_splits=4, num_reduces=2, **kwargs):
    def reader(split):
        for j in range(5):
            yield ((j,), 1 + split.index)

    return JobConf(
        name="count",
        splits=[
            ByteRangeSplit(index=i, path="/f", start=i * 10, length=10)
            for i in range(num_splits)
        ],
        reader_factory=reader,
        mapper_factory=IdentityMapper,
        reducer_factory=lambda: FunctionReducer(
            lambda k, vals: [(k, sum(vals))]
        ),
        partitioner=HashPartitioner(),
        num_reduce_tasks=num_reduces,
        **kwargs,
    )


def canon(res):
    return {p: sorted(v) for p, v in res.outputs.items()}


# --------------------------------------------------------------------- #
# Units: CancelToken / Heartbeat / HangDetector
# --------------------------------------------------------------------- #
class TestCancelToken:
    def test_first_cancel_wins(self):
        tok = CancelToken()
        assert not tok.cancelled
        assert tok.cancel(REASON_HANG)
        assert not tok.cancel(REASON_SUPERSEDED)
        assert tok.reason == REASON_HANG
        assert tok.cancelled

    def test_check_raises_with_reason(self):
        tok = CancelToken()
        tok.check()  # no-op before cancellation
        tok.cancel(REASON_SUPERSEDED)
        with pytest.raises(TaskCancelledError) as ei:
            tok.check()
        assert ei.value.reason == REASON_SUPERSEDED

    def test_wait_releases_on_cancel(self):
        tok = CancelToken()
        assert not tok.wait(timeout=0.01)
        threading.Timer(0.02, lambda: tok.cancel(REASON_HANG)).start()
        assert tok.wait(timeout=2.0)


class TestHeartbeat:
    def test_publishes_rate_limited(self):
        bus = EventBus()
        sub = bus.subscribe()
        hb = Heartbeat(bus, "map", 3, 0, 0.01, every=1)
        hb.beat()
        time.sleep(0.02)
        hb.beat()
        evs = [e for e in sub.drain() if e.type == EV_TASK_HEARTBEAT]
        assert len(evs) == 2
        assert evs[0].index == 3
        assert evs[-1].data["progress"] == 2

    def test_noop_without_bus(self):
        hb = Heartbeat(None, "map", 0, 0, 0.01)
        hb.beat()
        assert hb.count == 0  # short-circuits before counting


class TestHangDetector:
    def test_flags_silent_not_beating(self):
        bus = EventBus()
        det = HangDetector(bus, hang_timeout=0.05)
        bus.publish(EV_TASK_START, kind="map", index=0, attempt=0)
        bus.publish(EV_TASK_START, kind="map", index=1, attempt=0)
        hb = Heartbeat(bus, "map", 1, 0, 0.0, every=1)
        deadline = time.time() + 2.0
        while not det.hangs and time.time() < deadline:
            hb.beat()
            det.check()
            time.sleep(0.01)
        assert ("map", 0, 0) in det.hangs
        assert ("map", 1, 0) not in det.hangs

    def test_rank_orders_simultaneous_flags(self):
        bus = EventBus()
        sub = bus.subscribe()
        det = HangDetector(
            bus, hang_timeout=0.01, rank=lambda kind, index: float(index)
        )
        for i in range(3):
            bus.publish(EV_TASK_START, kind="map", index=i, attempt=0)
        time.sleep(0.05)
        det.check()
        hangs = [e.index for e in sub.drain() if e.type == EV_TASK_HANG]
        assert hangs == [2, 1, 0]

    def test_ticker_context_stops_on_exception(self):
        det = HangDetector(EventBus(), hang_timeout=0.5)
        with pytest.raises(RuntimeError):
            with det.ticker(0.01):
                assert det._ticker is not None
                raise RuntimeError("body blew up")
        assert det._ticker is None


class TestStructuralPriority:
    def test_fetch_set_probe(self):
        from repro.mapreduce.engine import DependencyBarrier

        barrier = DependencyBarrier(
            {0: frozenset({0, 1}), 1: frozenset({0}), 2: frozenset({2})}
        )
        p0 = structural_priority(
            0, pending=(0, 1, 2), barrier=barrier, total_maps=3
        )
        p2 = structural_priority(
            2, pending=(0, 1, 2), barrier=barrier, total_maps=3
        )
        assert p0 == 2.0  # map 0 blocks reduces 0 and 1
        assert p2 == 1.0
        # already-fired partitions stop counting
        assert structural_priority(
            2, pending=(0, 1), barrier=barrier, total_maps=3
        ) == 0.0

    def test_default_is_one(self):
        assert structural_priority(5) == 1.0


# --------------------------------------------------------------------- #
# The HANG fault blocks until cooperatively cancelled
# --------------------------------------------------------------------- #
class TestHangFault:
    def test_blocks_until_cancel(self):
        bound = hang_plan(index=0).bind(1, 1)
        tok = CancelToken()
        state = {}

        def body():
            try:
                bound.fire("map", 0, 0, cancel=tok)
            except TaskCancelledError as exc:
                state["reason"] = exc.reason

        t = threading.Thread(target=body, daemon=True)
        t.start()
        t.join(timeout=0.1)
        assert t.is_alive()  # still blocked
        tok.cancel(REASON_HANG)
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert state["reason"] == REASON_HANG

    def test_released_attempt_window(self):
        rule = hang_plan(index=0).rules[0]
        assert rule.active_on_attempt(0)
        assert not rule.active_on_attempt(1)


# --------------------------------------------------------------------- #
# Engine round-trips: hang -> speculate -> cancel -> identical output
# --------------------------------------------------------------------- #
class TestEngineSpeculation:
    def test_threaded_backup_wins_race(self):
        oracle = LocalEngine().run_serial(counting_job())
        eng = LocalEngine(
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
        )
        res = eng.run_threaded(counting_job())
        assert canon(res) == canon(oracle)
        assert res.counters.get("task.speculations") == 1
        assert res.counters.get("task.cancelled") == 1
        lost = [a for a in res.attempts if a.outcome == "lost"]
        assert [(a.kind, a.index) for a in lost] == [("map", 1)]

    def test_serial_cancel_retry(self):
        oracle = LocalEngine().run_serial(counting_job())
        eng = LocalEngine(
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
        )
        res = eng.run_serial(counting_job())
        assert canon(res) == canon(oracle)
        # serial has no pool to race on: mitigation is cancel + retry
        assert res.counters.get("task.cancelled") == 1
        cancelled = [a for a in res.attempts if a.outcome == "cancelled"]
        assert [(a.kind, a.index) for a in cancelled] == [("map", 1)]

    def test_reduce_hang_is_cancel_retried(self):
        oracle = LocalEngine().run_serial(counting_job())
        for run in ("run_serial", "run_threaded"):
            eng = LocalEngine(
                speculation=FAST,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
                faults=hang_plan(task="reduce", index=0),
            )
            res = getattr(eng, run)(counting_job())
            assert canon(res) == canon(oracle), run
            assert res.counters.get("task.cancelled") == 1, run

    def test_hang_exhausts_retry_budget_serial(self):
        # Serial raises the raw task error (matching crash semantics).
        eng = LocalEngine(
            speculation=SpeculationPolicy(
                hang_timeout=0.05, heartbeat_interval=0.01, max_backups=0
            ),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=hang_plan(index=1, times=5),
        )
        with pytest.raises(TaskCancelledError):
            eng.run_serial(counting_job())

    def test_hang_exhausts_retry_budget_threaded(self):
        eng = LocalEngine(
            speculation=SpeculationPolicy(
                hang_timeout=0.05, heartbeat_interval=0.01, max_backups=0
            ),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=hang_plan(index=1, times=5),
        )
        with pytest.raises(JobFailedError):
            eng.run_threaded(counting_job())

    def test_speculate_hook_fires(self):
        from repro.verify import RecordingHook

        hook = RecordingHook()
        eng = LocalEngine(
            observability=False,
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
            scheduler_hook=hook,
        )
        eng.run_threaded(counting_job())
        spec = [e for e in hook.events if e.point == HOOK_SPECULATE]
        assert len(spec) == 1
        assert spec[0].kind == "map" and spec[0].index == 1
        assert spec[0].info["of"] == 0 and spec[0].attempt == 1
        assert HOOK_SPECULATE in HOOK_POINTS


# --------------------------------------------------------------------- #
# Weekly-mean workload: both engines x both data planes (acceptance)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def weekly():
    field = temperature_dataset(days=364, lat=8, lon=8, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature",
        extraction_shape=(7, 5, 2),
        operator=MeanOp(),
    ).compile(field.metadata)
    splits = slice_splits(plan, num_splits=8)
    return plan, splits, data


class TestWeeklyMeanRoundTrip:
    @pytest.mark.parametrize("plane", ["record", "columnar"])
    @pytest.mark.parametrize("run", ["run_serial", "run_threaded"])
    def test_byte_identical_to_no_fault_oracle(self, weekly, run, plane):
        plan, splits, data = weekly
        job, barrier, _ = build_sidr_job(
            plan, splits, 4, data, data_plane=plane
        )
        expected = LocalEngine().run_serial(job, barrier).all_records()

        eng = LocalEngine(
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=2),
        )
        job, barrier, _ = build_sidr_job(
            plan, splits, 4, data, data_plane=plane
        )
        res = getattr(eng, run)(job, barrier)
        assert res.all_records() == expected


# --------------------------------------------------------------------- #
# Zone-map pruning composes with speculative execution
# --------------------------------------------------------------------- #
class TestPrunedPlanSpeculation:
    """ISSUE satellite: a hedged backup attempt over a pruned plan must
    produce the same records as the primary — synthesized keys are
    rebuilt per attempt, never double-merged by the losing attempt."""

    @pytest.mark.parametrize("plane", ["record", "columnar"])
    def test_backup_wins_race_on_pruned_plan(self, plane):
        from tests.test_fault_tolerance import pruned_filter_job

        job, barrier, _ = pruned_filter_job(plane, prune=False)
        clean = LocalEngine().run_serial(job, barrier).all_records()

        job, barrier, sidr = pruned_filter_job(plane)
        assert sidr.pruning is not None and sidr.pruning.num_pruned == 4
        eng = LocalEngine(
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
        )
        res = eng.run_threaded(job, barrier)
        assert res.all_records() == clean
        assert res.counters.get("task.speculations") == 1
        assert res.counters.get("task.cancelled") == 1
        assert res.counters.get("plan.splits.pruned") == 4

    @pytest.mark.parametrize("plane", ["record", "columnar"])
    def test_serial_cancel_retry_on_pruned_plan(self, plane):
        from tests.test_fault_tolerance import pruned_filter_job

        job, barrier, _ = pruned_filter_job(plane, prune=False)
        clean = LocalEngine().run_serial(job, barrier).all_records()

        job, barrier, _ = pruned_filter_job(plane)
        eng = LocalEngine(
            speculation=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
        )
        res = eng.run_serial(job, barrier)
        assert res.all_records() == clean
        assert res.counters.get("task.cancelled") == 1


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #
class TestDeadline:
    def test_conf_validation(self):
        with pytest.raises(JobConfigError):
            counting_job(deadline=-1.0)
        with pytest.raises(JobConfigError):
            counting_job(deadline=1.0, on_deadline="shrug")

    @pytest.mark.parametrize("run", ["run_serial", "run_threaded"])
    def test_fail_mode_raises(self, run):
        eng = LocalEngine(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=hang_plan(index=1, times=5),
        )
        job = counting_job(deadline=0.1, on_deadline="fail")
        with pytest.raises(JobFailedError):
            getattr(eng, run)(job)

    def test_partial_mode_returns_completed_prefix(self):
        # Disjoint deps: reduce 1 only needs map 2, which never hangs.
        from repro.mapreduce.engine import DependencyBarrier
        from repro.mapreduce.partitioner import RangePartitioner

        def reader(split):
            yield ((split.index,), split.index * 10)

        def make(**kw):
            return JobConf(
                name="partial",
                splits=[
                    ByteRangeSplit(index=i, path="/f", start=i * 10, length=10)
                    for i in range(3)
                ],
                reader_factory=reader,
                mapper_factory=IdentityMapper,
                reducer_factory=lambda: FunctionReducer(
                    lambda k, vals: [(k, sum(vals))]
                ),
                partitioner=RangePartitioner((3,), [2, 3]),
                num_reduce_tasks=2,
                contact_all_maps=False,
                **kw,
            )

        barrier = DependencyBarrier(
            {0: frozenset({0, 1}), 1: frozenset({2})}
        )
        oracle = LocalEngine().run_threaded(make(), barrier)

        eng = LocalEngine(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=hang_plan(index=0, times=5),
        )
        res = eng.run_threaded(
            make(deadline=0.25, on_deadline="partial"), barrier
        )
        assert res.partial
        assert 1 in res.outputs  # the unblocked partition finished
        assert 0 not in res.outputs  # the hung dependency never cleared
        assert sorted(res.outputs[1]) == sorted(oracle.outputs[1])

    def test_deadline_not_hit_is_clean(self):
        res = LocalEngine().run_threaded(
            counting_job(deadline=60.0, on_deadline="partial")
        )
        assert not res.partial
        assert len(res.outputs) == 2


# --------------------------------------------------------------------- #
# Explorer: at-most-one-winner across >= 25 seeded schedules
# --------------------------------------------------------------------- #
class TestAtMostOneWinner:
    def test_chaos_schedules(self):
        oracle = canon(LocalEngine().run_serial(counting_job()))
        for schedule in range(25):
            hook = ChaosHook(
                seed=11,
                schedule=schedule,
                max_delay=0.0 if schedule == 0 else 0.0015,
            )
            eng = LocalEngine(
                observability=False,
                speculation=FAST,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
                faults=hang_plan(index=1),
                scheduler_hook=hook,
            )
            job = counting_job()
            res = eng.run_threaded(job)
            assert canon(res) == oracle, f"schedule {schedule}"
            from repro.mapreduce.engine import GlobalBarrier

            violations = check_interleaving_invariants(
                hook.events,
                barrier=GlobalBarrier(),
                total_maps=job.num_map_tasks,
                contact_all_maps=True,
                attempts=res.attempts,
            )
            assert not violations, (
                f"schedule {schedule}: "
                + "; ".join(str(v) for v in violations)
            )

    def test_invariant_catches_double_winner(self):
        from repro.mapreduce.engine import GlobalBarrier
        from repro.verify.hooks import HookEvent

        events = [
            HookEvent(0, HOOK_SPECULATE, "map", 0, 1, {"of": 0}),
            HookEvent(1, "spill-commit", "map", 0, 0),
            HookEvent(2, "spill-commit", "map", 0, 1),
        ]
        violations = check_interleaving_invariants(
            events, barrier=GlobalBarrier(), total_maps=1,
            contact_all_maps=True,
        )
        assert any(v.invariant == "at-most-one-winner" for v in violations)


# --------------------------------------------------------------------- #
# Differential fuzz: a speculate case through all four configurations
# --------------------------------------------------------------------- #
class TestFuzzSpeculate:
    def test_hang_case_all_configs(self):
        case = FuzzCase(
            seed=77,
            shape=(6, 4),
            extraction=(3, 2),
            stride=None,
            operator="mean",
            threshold=None,
            num_splits=3,
            reduces=2,
            fault_rules=(
                {"task": "map", "fault": "hang", "indices": [1], "times": 1},
            ),
            speculate=True,
        )
        assert FuzzCase.from_json(case.to_json()) == case
        result = run_case(case)
        assert result.ok, result.mismatch


# --------------------------------------------------------------------- #
# Live plane vocabulary
# --------------------------------------------------------------------- #
class TestLiveVocabulary:
    def test_phase_totals_counts_speculation_events(self):
        from repro.obs import JobObservability
        from repro.obs.live.stream import phase_totals

        bus = EventBus()
        sub = bus.subscribe()
        obs = JobObservability("spec", bus=bus)
        eng = LocalEngine(
            # Straggler speculation off: mitigation must come from the
            # staleness rule, so a task.hang event is guaranteed.
            speculation=SpeculationPolicy(
                hang_timeout=0.08,
                heartbeat_interval=0.01,
                speculate_stragglers=False,
            ),
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=hang_plan(index=1),
        )
        res = eng.run_threaded(counting_job(), obs=obs)
        totals = phase_totals(sub.drain())
        assert totals["hangs"] >= 1
        assert totals["speculations"] == 1
        assert totals["cancelled"] == 1
        assert totals["map"]["finished"] == 4
        assert res.counters.get("task.speculations") == 1
