"""Concurrency harness for the resident query service (docs/SERVICE.md).

The tentpole proof: many structural queries — mixed operators, data
planes, and engine modes — run *concurrently* over one shared open
dataset, and every served result is byte-identical to a brute-force
oracle computed completely outside the service path.  Spill/store
isolation is asserted directly (a private spill root must end empty),
and the admission-control paths (quotas, failure budgets, priorities,
cancellation, deadlines) are driven deterministically via the pausable
queue.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.scidata.dataset import create_dataset
from repro.service import (
    AdmissionError,
    QueryRequest,
    QueryService,
    StressDriver,
    TenantQuota,
    oracle_for_request,
    service_fixture,
)
from repro.service.api import CANCELLED, DONE, FAILED, QUEUED


def stress_data(seed=7, shape=(24, 20)):
    """Integer-valued float64 field (exact partial sums -> engine output
    is byte-identical to the oracle regardless of reduction order)."""
    rng = np.random.default_rng(seed)
    return rng.integers(-50, 50, size=shape, endpoint=True).astype(np.float64)


def req(**kw):
    base = dict(
        dataset="shared", variable="v", extract=(4, 5),
        operator="mean", splits=6, reduces=3, prune=False,
    )
    base.update(kw)
    return QueryRequest(**base)


#: 16 jobs covering {serial, threaded, process} x {record, columnar},
#: several operators, strides, pruning on and off, and distinct
#: split/reduce geometries — all against ONE shared dataset session.
STRESS_MATRIX = [
    req(engine="serial", data_plane="record"),
    req(engine="serial", data_plane="columnar", operator="sum"),
    req(engine="threaded", data_plane="record", operator="max"),
    req(engine="threaded", data_plane="columnar"),
    req(engine="process", data_plane="record", operator="sum"),
    req(engine="process", data_plane="columnar", operator="min"),
    req(engine="threaded", data_plane="record",
        operator="filter_gt", threshold=10.0, prune=True),
    req(engine="serial", data_plane="columnar",
        operator="filter_gt", threshold=-5.0, prune=True),
    req(engine="threaded", data_plane="columnar", extract=(8, 10)),
    req(engine="serial", data_plane="record", extract=(3, 4),
        operator="stddev"),
    req(engine="threaded", data_plane="record", stride=(8, 5),
        operator="count"),
    req(engine="process", data_plane="columnar", extract=(6, 4),
        operator="median"),
    req(engine="threaded", data_plane="columnar", splits=2, reduces=1),
    req(engine="serial", data_plane="record", splits=12, reduces=4,
        operator="sum"),
    req(engine="threaded", data_plane="record", extract=(2, 2),
        operator="mean"),
    req(engine="threaded", data_plane="columnar",
        operator="filter_gt", threshold=0.0),
]


class TestSixteenJobStress:
    def test_mixed_engine_stress_is_byte_identical_to_oracle(
        self, tmp_path, monkeypatch
    ):
        """The acceptance-criteria run: 16 concurrent mixed-engine jobs
        over one shared on-disk dataset, each byte-identical to its
        per-request brute-force oracle, with zero spill leakage."""
        spill_root = tmp_path / "spills"
        monkeypatch.setenv("REPRO_SPILL_DIR", str(spill_root))

        path = tmp_path / "shared.nclite"
        create_dataset(path, var_name="v", data=stress_data()).close()

        with QueryService(workers=4, map_workers=2, reduce_workers=2) as svc:
            session = svc.open_dataset("shared", str(path))
            # the shared session really is the PR-9 zero-copy read path
            assert session.snapshot()["mmap"] is True

            outcome = StressDriver(svc).run_batch(STRESS_MATRIX)
            assert outcome.all_done, outcome.mismatches()
            assert outcome.all_identical, outcome.mismatches()
            assert len(outcome.results) == 16
            # every job ran (no silent drops), ids all distinct
            assert len(set(outcome.job_ids)) == 16
            assert sorted(outcome.dispatch_order) == sorted(outcome.job_ids)

        # per-job namespaced spill dirs were all torn down: nothing
        # leaked across (or after) the 16 concurrent jobs
        leftovers = (
            [p.name for p in spill_root.iterdir()]
            if spill_root.exists() else []
        )
        assert leftovers == []

    def test_repeated_batch_hits_plan_cache_100_percent(self, tmp_path):
        path = tmp_path / "shared.nclite"
        create_dataset(path, var_name="v", data=stress_data()).close()
        with QueryService(workers=2, map_workers=2, reduce_workers=2) as svc:
            svc.open_dataset("shared", str(path))
            driver = StressDriver(svc)
            first = driver.run_batch(STRESS_MATRIX[:8])
            assert first.all_identical, first.mismatches()
            second = driver.run_batch(STRESS_MATRIX[:8])
            assert second.all_identical, second.mismatches()
            # identical plan keys over identical content: pure hits
            assert all(r["plan_cache_hit"] for r in second.results)
            snap = svc.plan_cache.snapshot()
            assert snap["hits"] >= 8
            assert second.results[0]["digest"] == first.results[0]["digest"]


class TestQuotas:
    def test_max_active_refuses_excess_submissions(self):
        with service_fixture(
            workers=1,
            start_paused=True,
            default_quota=TenantQuota(max_active=2),
        ) as client:
            client.service.register_array("shared", "v", stress_data())
            client.submit(req())
            client.submit(req())
            with pytest.raises(AdmissionError, match="active"):
                client.submit(req())
            # a different tenant has its own budget
            client.submit(req(tenant="other"))
            # finishing a job frees the slot
            client.service.queue.resume()
            client.service.queue.drain(timeout=60)
            client.submit(req())

    def test_max_jobs_is_a_lifetime_cap(self):
        with service_fixture(
            workers=1, default_quota=TenantQuota(max_jobs=2)
        ) as client:
            client.service.register_array("shared", "v", stress_data())
            client.result(client.submit(req()))
            client.result(client.submit(req()))
            with pytest.raises(AdmissionError, match="job quota"):
                client.submit(req())

    def test_failure_budget_locks_out_a_crashing_tenant(self):
        crash = dict(
            fault_rules=({"task": "map", "fault": "crash", "indices": [0]},),
        )
        with service_fixture(
            workers=1,
            quotas={"flaky": TenantQuota(failure_budget=2)},
        ) as client:
            client.service.register_array("shared", "v", stress_data())
            for _ in range(2):
                doc = client.query(req(tenant="flaky", **crash))
                assert doc["state"] == FAILED
            with pytest.raises(AdmissionError, match="failure budget"):
                client.submit(req(tenant="flaky"))
            # the default tenant is unaffected
            assert client.query(req())["state"] == DONE
            stats = client.stats()["tenants"]["flaky"]
            assert stats["failures"] == 2


class TestPriorityOrdering:
    def test_dispatch_order_is_priority_then_submission(self):
        """With the queue paused during submission and one worker,
        dispatch order is exactly (-priority, submission seq)."""
        with service_fixture(workers=1, start_paused=True) as client:
            svc = client.service
            svc.register_array("shared", "v", stress_data())
            low1 = client.submit(req(priority=0))
            high = client.submit(req(priority=10))
            low2 = client.submit(req(priority=0))
            mid = client.submit(req(priority=5))
            svc.queue.resume()
            for job_id in (low1, high, low2, mid):
                assert client.result(job_id)["state"] == DONE
            assert svc.queue.dispatch_order == [high, mid, low1, low2]


class TestCancellation:
    def test_cancel_queued_job(self):
        with service_fixture(workers=1, start_paused=True) as client:
            client.service.register_array("shared", "v", stress_data())
            job_id = client.submit(req())
            assert client.status(job_id)["state"] == QUEUED
            assert client.cancel(job_id) is True
            client.service.queue.resume()
            doc = client.result(job_id)
            assert doc["state"] == CANCELLED
            assert "records" not in doc
            # cancelling a terminal job is a no-op
            assert client.cancel(job_id) is False

    def test_close_cancels_still_queued_jobs(self):
        service = QueryService(workers=1, start_paused=True)
        service.register_array("shared", "v", stress_data())
        job_id = service.submit(req())
        service.close()
        assert service.status(job_id)["state"] == CANCELLED


class TestDeadlines:
    """A hung map attempt against a wall-clock budget, via the service."""

    HANG = dict(
        fault_rules=({"task": "map", "fault": "hang", "indices": [0],
                      "times": 5},),
        max_attempts=2,
        engine="threaded",
    )

    def test_deadline_fail_mode_fails_the_job(self):
        with service_fixture(workers=1) as client:
            client.service.register_array("shared", "v", stress_data())
            doc = client.query(
                req(deadline=0.2, on_deadline="fail", **self.HANG),
                timeout=60,
            )
            assert doc["state"] == FAILED
            assert "DeadlineExceededError" in doc["error_types"]

    def test_deadline_partial_mode_serves_partial_flag(self):
        with service_fixture(workers=1) as client:
            client.service.register_array("shared", "v", stress_data())
            doc = client.query(
                req(deadline=0.3, on_deadline="partial", **self.HANG),
                timeout=60,
            )
            assert doc["state"] == DONE
            assert doc["partial"] is True
