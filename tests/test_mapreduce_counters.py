"""Unit tests for counters, mapper/reducer base classes and trace."""

import threading

import pytest

from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import EngineTrace
from repro.mapreduce.mapper import FunctionMapper, IdentityMapper
from repro.mapreduce.reducer import (
    AggregateReducer,
    CombinerAdapter,
    ConcatReducer,
    FunctionReducer,
    IdentityReducer,
)
from repro.query.operators import Chunk, MeanOp


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("a")
        c.increment("a", 4)
        assert c.get("a") == 5
        assert c.get("missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y", 1)
        a.merge(b)
        assert a.as_dict() == {"x": 5, "y": 1}

    def test_thread_safety(self):
        c = Counters()

        def bump():
            for _ in range(1000):
                c.increment("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("n") == 8000


class TestMapperReducerLibrary:
    def test_identity_mapper(self):
        m = IdentityMapper()
        assert list(m.map((1,), "v")) == [((1,), "v")]
        assert list(m.cleanup()) == []

    def test_function_mapper(self):
        m = FunctionMapper(lambda k, v: [(k, v * 2)])
        assert list(m.map((1,), 3)) == [((1,), 6)]

    def test_identity_reducer(self):
        r = IdentityReducer()
        assert list(r.reduce((1,), [1, 2])) == [((1,), 1), ((1,), 2)]

    def test_concat_reducer(self):
        r = ConcatReducer()
        assert list(r.reduce((1,), [1, 2])) == [((1,), [1, 2])]

    def test_function_reducer(self):
        r = FunctionReducer(lambda k, vals: [(k, sum(vals))])
        assert list(r.reduce((0,), [1, 2, 3])) == [((0,), 6)]

    def test_aggregate_and_combiner(self):
        op = MeanOp()
        p1 = op.map_partial(_chunk([2.0, 4.0]))
        p2 = op.map_partial(_chunk([6.0]))
        combined = list(CombinerAdapter(op).reduce((0,), [p1, p2]))
        assert len(combined) == 1
        final = list(AggregateReducer(op).reduce((0,), [combined[0][1]]))
        assert final[0][1] == pytest.approx(4.0)


def _chunk(values):
    import numpy as np

    arr = np.asarray(values, dtype=np.float64)
    return Chunk(arr, arr.size)


class TestEngineTrace:
    def test_sequence_monotone(self):
        t = EngineTrace()
        t.record("map", "start", 0)
        t.record("map", "finish", 0)
        t.record("reduce", "start", 0)
        seqs = [e.seq for e in t.events]
        assert seqs == [0, 1, 2]

    def test_seq_of_lookup(self):
        t = EngineTrace()
        t.record("map", "finish", 3)
        assert t.seq_of("map", "finish", 3) == 0
        assert t.seq_of("reduce", "start", 3) == -1

    def test_early_reduce_count(self):
        t = EngineTrace()
        t.record("map", "finish", 0)
        t.record("reduce", "start", 0)   # before last map
        t.record("map", "finish", 1)
        t.record("reduce", "start", 1)   # after last map
        assert t.reduce_starts_before_last_map() == 1

    def test_no_maps_no_early(self):
        t = EngineTrace()
        t.record("reduce", "start", 0)
        assert t.reduce_starts_before_last_map() == 0

    def test_thread_safety(self):
        t = EngineTrace()

        def spam(i):
            for j in range(300):
                t.record("map", "start", i * 1000 + j)

        threads = [threading.Thread(target=spam, args=(i,)) for i in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = t.events
        assert len(events) == 1200
        assert sorted(e.seq for e in events) == list(range(1200))
