"""Unit and property tests for the coordinate-based Dataset API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.slab import Slab
from repro.errors import DatasetError
from repro.scidata.dataset import create_dataset, open_dataset
from repro.scidata.metadata import simple_metadata


@pytest.fixture
def small_ds(tmp_path):
    data = np.arange(5 * 6 * 7, dtype=np.float64).reshape(5, 6, 7)
    ds = create_dataset(tmp_path / "d.nc", var_name="v", data=data, mode="r+")
    yield ds, data
    ds.close()


class TestRead:
    def test_read_all(self, small_ds):
        ds, data = small_ds
        assert np.array_equal(ds.read_all("v"), data)

    def test_read_slab(self, small_ds):
        ds, data = small_ds
        slab = Slab((1, 2, 3), (2, 3, 2))
        assert np.array_equal(ds.read_slab("v", slab), data[slab.as_slices()])

    def test_read_out_of_bounds(self, small_ds):
        ds, _ = small_ds
        with pytest.raises(DatasetError):
            ds.read_slab("v", Slab((4, 0, 0), (2, 1, 1)))

    def test_read_unknown_variable(self, small_ds):
        ds, _ = small_ds
        with pytest.raises(DatasetError):
            ds.read_slab("w", Slab((0, 0, 0), (1, 1, 1)))

    def test_rank_mismatch(self, small_ds):
        ds, _ = small_ds
        with pytest.raises(DatasetError):
            ds.read_slab("v", Slab((0, 0), (1, 1)))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_slab_matches_numpy(self, tmp_path_factory, data):
        arr = np.arange(4 * 5 * 6, dtype=np.float32).reshape(4, 5, 6)
        root = tmp_path_factory.mktemp("hyp")
        path = root / "d.nc"
        if not path.exists():
            create_dataset(path, var_name="v", data=arr).close()
        corner = tuple(data.draw(st.integers(0, s - 1)) for s in arr.shape)
        shape = tuple(
            data.draw(st.integers(1, s - c)) for s, c in zip(arr.shape, corner)
        )
        with open_dataset(path) as ds:
            got = ds.read_slab("v", Slab(corner, shape))
        assert np.array_equal(got, arr[Slab(corner, shape).as_slices()])


class TestWrite:
    def test_write_then_read(self, small_ds):
        ds, _ = small_ds
        slab = Slab((0, 0, 0), (2, 2, 2))
        block = np.full((2, 2, 2), -1.0)
        ds.write_slab("v", slab, block)
        assert np.array_equal(ds.read_slab("v", slab), block)

    def test_write_preserves_rest(self, small_ds):
        ds, data = small_ds
        slab = Slab((2, 2, 2), (1, 2, 3))
        ds.write_slab("v", slab, np.zeros(slab.shape))
        expected = data.copy()
        expected[slab.as_slices()] = 0
        assert np.array_equal(ds.read_all("v"), expected)

    def test_write_readonly_raises(self, tmp_path):
        data = np.zeros((2, 2))
        ds = create_dataset(tmp_path / "ro.nc", var_name="v", data=data)
        with pytest.raises(DatasetError):
            ds.write_slab("v", Slab((0, 0), (1, 1)), np.zeros((1, 1)))
        ds.close()

    def test_write_shape_mismatch(self, small_ds):
        ds, _ = small_ds
        with pytest.raises(DatasetError):
            ds.write_slab("v", Slab((0, 0, 0), (2, 2, 2)), np.zeros((2, 2)))


class TestIOStats:
    def test_contiguous_read_one_seek(self, small_ds):
        ds, _ = small_ds
        ds.io_stats.reset()
        ds.read_slab("v", Slab((2, 0, 0), (2, 6, 7)))
        assert ds.io_stats.seeks == 1

    def test_scattered_read_many_seeks(self, small_ds):
        ds, _ = small_ds
        ds.io_stats.reset()
        ds.read_slab("v", Slab((0, 0, 3), (5, 6, 1)))
        assert ds.io_stats.seeks == 30  # one per (dim0, dim1) row

    def test_write_runs_estimate(self, small_ds):
        ds, _ = small_ds
        assert ds.write_runs_estimate("v", Slab((2, 0, 0), (2, 6, 7))) == 1
        assert ds.write_runs_estimate("v", Slab((0, 0, 3), (5, 6, 1))) == 30

    def test_bytes_accounted(self, small_ds):
        ds, _ = small_ds
        ds.io_stats.reset()
        ds.read_slab("v", Slab((0, 0, 0), (1, 1, 7)))
        assert ds.io_stats.bytes_read == 7 * 8


class TestCreate:
    def test_needs_metadata_or_quick_form(self, tmp_path):
        with pytest.raises(DatasetError):
            create_dataset(tmp_path / "x.nc")

    def test_full_form_with_fill(self, tmp_path):
        meta = simple_metadata("v", (3, 3))
        ds = create_dataset(tmp_path / "f.nc", meta, fill=2.5)
        assert np.all(ds.read_all("v") == 2.5)
        ds.close()

    def test_bad_mode(self, tmp_path):
        data = np.zeros((2,))
        create_dataset(tmp_path / "m.nc", var_name="v", data=data).close()
        with pytest.raises(DatasetError):
            open_dataset(tmp_path / "m.nc", mode="w")

    def test_context_manager(self, tmp_path):
        data = np.zeros((2,))
        with create_dataset(tmp_path / "c.nc", var_name="v", data=data) as ds:
            assert ds.variable_shape("v") == (2,)


class TestMmapReadPath:
    """Read-only datasets serve slabs from an mmap (zero-copy views for
    contiguous runs); writable datasets keep buffered reads.  Both paths
    must agree on data *and* on the physical-IO accounting."""

    @pytest.fixture()
    def ro_ds(self, tmp_path):
        data = np.arange(5 * 6 * 7, dtype=np.float64).reshape(5, 6, 7)
        create_dataset(tmp_path / "ro.nc", var_name="v", data=data).close()
        ds = open_dataset(tmp_path / "ro.nc")  # mode="r" -> mmap path
        yield ds, data
        ds.close()

    def test_values_match_buffered_path(self, ro_ds, tmp_path):
        ds, data = ro_ds
        rw = open_dataset(ds.path, mode="r+")
        for slab in (
            Slab((0, 0, 0), (5, 6, 7)),
            Slab((2, 0, 0), (2, 6, 7)),
            Slab((0, 0, 3), (5, 6, 1)),
            Slab((1, 2, 3), (2, 2, 2)),
        ):
            assert np.array_equal(ds.read_slab("v", slab),
                                  rw.read_slab("v", slab))
        rw.close()

    def test_contiguous_run_is_zero_copy_view(self, ro_ds):
        ds, data = ro_ds
        out = ds.read_slab("v", Slab((2, 0, 0), (2, 6, 7)))
        assert out.base is not None  # a view of the mapping, not a copy
        assert not out.flags.writeable
        assert np.array_equal(out, data[2:4])

    def test_io_stats_identical_to_buffered_path(self, ro_ds):
        ds, _ = ro_ds
        rw = open_dataset(ds.path, mode="r+")
        for slab in (Slab((2, 0, 0), (2, 6, 7)), Slab((0, 0, 3), (5, 6, 1))):
            ds.io_stats.reset()
            rw.io_stats.reset()
            ds.read_slab("v", slab)
            rw.read_slab("v", slab)
            assert ds.io_stats.seeks == rw.io_stats.seeks
            assert ds.io_stats.read_calls == rw.io_stats.read_calls
            assert ds.io_stats.bytes_read == rw.io_stats.bytes_read
        rw.close()

    def test_multi_run_slab_is_fresh_writable_gather(self, ro_ds):
        ds, data = ro_ds
        out = ds.read_slab("v", Slab((0, 0, 3), (5, 6, 1)))
        out[0, 0, 0] = -1.0  # gathers are owned, safe to mutate
        assert np.array_equal(
            ds.read_slab("v", Slab((0, 0, 3), (5, 6, 1))),
            data[:, :, 3:4],
        )

    def test_close_with_live_view_keeps_view_valid(self, tmp_path):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        create_dataset(tmp_path / "cv.nc", var_name="v", data=data).close()
        ds = open_dataset(tmp_path / "cv.nc")
        view = ds.read_slab("v", Slab((1, 0), (1, 4)))
        ds.close()  # BufferError suppressed; fd closed, map GC'd later
        assert np.array_equal(view, data[1:2])
        ds.close()  # idempotent

    def test_writable_dataset_never_maps(self, small_ds):
        ds, _ = small_ds
        ds.read_slab("v", Slab((0, 0, 0), (1, 1, 7)))
        assert ds._mm is None
