"""Plan-cache correctness for the resident query service.

Property-based core (Hypothesis): for *arbitrary* dataset geometry,
zone-map tiling, and query draws, a plan-cache **hit** serves a result
byte-identical to the cold-planned run and to the brute-force oracle.
Plus the invalidation contract — ``write_slab`` drops cached plans and
zone maps, and re-served results reflect the new bytes — and the keying
contract: plan-affecting knobs get distinct entries while
per-submission knobs (engine, data plane) share one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scidata.dataset import create_dataset
from repro.service import (
    PlanCache,
    QueryRequest,
    QueryService,
    oracle_for_request,
    service_fixture,
)
from repro.service.api import DONE


def int_field(seed, shape):
    rng = np.random.default_rng(seed)
    return rng.integers(-30, 30, size=shape, endpoint=True).astype(np.float64)


# --------------------------------------------------------------------- #
# PlanCache unit behaviour
# --------------------------------------------------------------------- #
class TestPlanCacheUnit:
    def test_lru_eviction_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.insert(("d", "g1", "q1"), "plan1")
        cache.insert(("d", "g1", "q2"), "plan2")
        assert cache.lookup(("d", "g1", "q1")) == "plan1"  # refresh q1
        cache.insert(("d", "g1", "q3"), "plan3")           # evicts q2
        assert cache.lookup(("d", "g1", "q2")) is None
        assert cache.lookup(("d", "g1", "q1")) == "plan1"
        snap = cache.snapshot()
        assert snap["size"] == 2
        assert snap["evictions"] == 1
        assert snap["hits"] == 2 and snap["misses"] == 1

    def test_invalidate_drops_only_that_dataset(self):
        cache = PlanCache()
        cache.insert(("a", "g", "q"), 1)
        cache.insert(("b", "g", "q"), 2)
        assert cache.invalidate("a") == 1
        assert cache.lookup(("a", "g", "q")) is None
        assert cache.lookup(("b", "g", "q")) == 2

    def test_digest_change_is_a_miss(self):
        cache = PlanCache()
        cache.insert(("d", "gen0", "q"), 1)
        assert cache.lookup(("d", "gen1", "q")) is None

    def test_get_or_build_builds_once_then_hits(self):
        cache = PlanCache()
        calls = []
        plan, hit = cache.get_or_build("d", "g", "q", lambda: calls.append(1) or "p")
        assert (plan, hit) == ("p", False)
        plan, hit = cache.get_or_build("d", "g", "q", lambda: calls.append(1) or "p")
        assert (plan, hit) == ("p", True)
        assert len(calls) == 1


# --------------------------------------------------------------------- #
# Property: hit == cold == oracle, for arbitrary draws
# --------------------------------------------------------------------- #
@st.composite
def service_case(draw):
    shape = (
        draw(st.integers(min_value=2, max_value=12)),
        draw(st.integers(min_value=2, max_value=10)),
    )
    extract = (
        draw(st.integers(min_value=1, max_value=shape[0])),
        draw(st.integers(min_value=1, max_value=shape[1])),
    )
    operator = draw(st.sampled_from(["mean", "sum", "max", "count", "filter_gt"]))
    threshold = (
        draw(st.integers(min_value=-20, max_value=20)) * 1.0
        if operator == "filter_gt" else None
    )
    # pruning only for the prunable operator (mirrors the fuzz matrix)
    prune = operator == "filter_gt" and draw(st.booleans())
    tile = (
        draw(st.integers(min_value=1, max_value=shape[0])),
        draw(st.integers(min_value=1, max_value=shape[1])),
    )
    splits = draw(st.integers(min_value=1, max_value=6))
    # reducers may not outnumber intermediate keys (extraction cells)
    cells = (shape[0] // extract[0]) * (shape[1] // extract[1])
    reduces = min(draw(st.integers(min_value=1, max_value=2)), cells)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return dict(
        shape=shape, extract=extract, operator=operator, threshold=threshold,
        prune=prune, tile=tile, splits=splits, reduces=reduces, seed=seed,
    )


class TestHitEqualsCold:
    @settings(max_examples=20)
    @given(case=service_case())
    def test_cache_hit_is_byte_identical_to_cold_plan_and_oracle(self, case):
        data = int_field(case["seed"], case["shape"])
        with service_fixture(workers=1, map_workers=2, reduce_workers=2) as client:
            client.service.register_array(
                "d", "v", data, tile=case["tile"], with_zone_map=True
            )
            req = QueryRequest(
                dataset="d", variable="v",
                extract=case["extract"], operator=case["operator"],
                threshold=case["threshold"], splits=case["splits"],
                reduces=case["reduces"], prune=case["prune"],
                engine="serial",
            )
            _, oracle_digest = oracle_for_request(client.service, req)
            cold = client.query(req)
            hot = client.query(req)
            assert cold["state"] == DONE, cold.get("error")
            assert cold["plan_cache_hit"] is False
            assert hot["plan_cache_hit"] is True
            assert cold["digest"] == oracle_digest
            assert hot["digest"] == oracle_digest
            assert hot["records"] == cold["records"]


# --------------------------------------------------------------------- #
# Invalidation: write_slab drops plans AND zone maps
# --------------------------------------------------------------------- #
class TestWriteSlabInvalidation:
    @pytest.fixture()
    def file_service(self, tmp_path):
        path = tmp_path / "d.nclite"
        create_dataset(path, var_name="v", data=int_field(1, (12, 10))).close()
        with QueryService(workers=1, map_workers=2, reduce_workers=2) as svc:
            svc.open_dataset("d", str(path))
            yield svc

    def req(self, **kw):
        base = dict(
            dataset="d", variable="v", extract=(4, 5),
            operator="filter_gt", threshold=0.0,
            splits=4, reduces=2, prune=True, engine="serial",
        )
        base.update(kw)
        return QueryRequest(**base)

    def test_write_slab_invalidates_plans_and_results_track_new_bytes(
        self, file_service
    ):
        svc = file_service
        req = self.req()
        before = svc.result(svc.submit(req), timeout=60)
        assert before["state"] == DONE
        assert svc.result(svc.submit(req), timeout=60)["plan_cache_hit"] is True
        old_digest = svc.registry.get("d").digest
        assert len(svc.plan_cache) == 1

        # overwrite a slab through the service: zone maps strip, the
        # session reopens under a new content digest, plans drop
        svc.write_slab("d", "v", (0, 0), np.full((4, 5), 99.0))
        assert len(svc.plan_cache) == 0
        assert svc.plan_cache.snapshot()["invalidations"] >= 1
        session = svc.registry.get("d")
        assert session.digest != old_digest
        assert session.metadata.zone_maps == ()

        after = svc.result(svc.submit(req), timeout=60)
        assert after["state"] == DONE
        assert after["plan_cache_hit"] is False
        assert after["digest"] != before["digest"]
        # and the served bytes equal the fresh oracle over the new data
        _, oracle_digest = oracle_for_request(svc, req)
        assert after["digest"] == oracle_digest
        # the written region is really visible: cell (0,0) is exactly
        # the overwritten (4,5) slab, and 99 > 0 passes the filter
        values = {tuple(k): v for k, v in after["records"]}
        assert values[(0, 0)] == [99.0] * 20

    def test_unrelated_dataset_keeps_its_cached_plans(self, file_service):
        svc = file_service
        svc.register_array("other", "v", int_field(2, (8, 5)))
        other = QueryRequest(
            dataset="other", variable="v", extract=(4, 5),
            splits=2, reduces=1, prune=False, engine="serial",
        )
        svc.result(svc.submit(other), timeout=60)
        svc.result(svc.submit(self.req()), timeout=60)
        assert len(svc.plan_cache) == 2
        svc.write_slab("d", "v", (0, 0), np.zeros((2, 2)))
        assert len(svc.plan_cache) == 1  # only dataset "d" dropped
        assert svc.result(svc.submit(other), timeout=60)[
            "plan_cache_hit"
        ] is True


# --------------------------------------------------------------------- #
# Keying: plan knobs split entries, submission knobs share them
# --------------------------------------------------------------------- #
class TestCacheKeying:
    def test_plan_knobs_get_distinct_entries(self):
        with service_fixture(workers=1, map_workers=2, reduce_workers=2) as client:
            svc = client.service
            svc.register_array("d", "v", int_field(3, (12, 10)),
                               with_zone_map=True)

            def run(**kw):
                base = dict(
                    dataset="d", variable="v", extract=(4, 5),
                    operator="filter_gt", threshold=0.0,
                    splits=4, reduces=2, prune=False, engine="serial",
                )
                base.update(kw)
                return client.query(QueryRequest(**base))

            assert run()["plan_cache_hit"] is False
            # prune changes the surviving split set: its own entry
            assert run(prune=True)["plan_cache_hit"] is False
            # so do geometry / operator knobs
            assert run(splits=2)["plan_cache_hit"] is False
            assert run(reduces=1)["plan_cache_hit"] is False
            assert run(threshold=5.0)["plan_cache_hit"] is False
            assert len(svc.plan_cache) == 5

            # engine and data plane are per-submission: all pure hits,
            # all byte-identical
            docs = [
                run(engine="serial", data_plane="columnar"),
                run(engine="threaded", data_plane="record"),
                run(engine="process", data_plane="columnar"),
            ]
            assert all(d["plan_cache_hit"] for d in docs)
            assert len({d["digest"] for d in docs}) == 1
            assert len(svc.plan_cache) == 5
