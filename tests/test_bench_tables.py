"""Reduced-scale runs of the table producers and ablations."""

import pytest

from repro.bench.tables import (
    ablation_skew_bound,
    ablation_store_vs_recompute,
    coordinate_pair_overhead,
    sec45_partition_micro,
    table2_reduce_write_scaling,
    table3_network_connections,
)
from repro.bench.workloads import query1_workload


@pytest.fixture(scope="module")
def wl_small():
    return query1_workload(num_splits=200)


class TestTable2:
    def test_sentinel_scales_sidr_constant(self, tmp_path):
        rows = table2_reduce_write_scaling(
            str(tmp_path),
            reduce_counts=(4, 8, 16),
            cells_per_task=32_768,
            runs=2,
        )
        sent = [r for r in rows if r.strategy == "sentinel"]
        sidr = [r for r in rows if r.strategy == "sidr-contiguous"]
        assert len(sent) == 3 and len(sidr) == 1
        # Sentinel file size doubles with the reduce count.
        assert sent[1].file_size_bytes == pytest.approx(
            2 * sent[0].file_size_bytes, rel=0.01
        )
        assert sent[2].file_size_bytes == pytest.approx(
            4 * sent[0].file_size_bytes, rel=0.01
        )
        # SIDR's file is the fixed per-task data, far below any sentinel.
        assert sidr[0].file_size_bytes < sent[0].file_size_bytes / 2
        assert sidr[0].seeks == 0

    def test_coordinate_pair_overhead_constant(self, tmp_path):
        ratio = coordinate_pair_overhead(str(tmp_path))
        assert 2.0 < ratio < 4.0


class TestTable3:
    def test_paper_rows(self, wl_small):
        rows = table3_network_connections(
            reduce_counts=(22, 66), workload=wl_small
        )
        r22 = rows[0]
        assert r22.hadoop_connections == 200 * 22
        # SIDR: roughly one connection per split plus block boundaries.
        assert r22.sidr_connections < r22.hadoop_connections / 10
        assert rows[1].hadoop_connections == 3 * r22.hadoop_connections

    def test_sidr_connections_grow_slowly(self, wl_small):
        rows = table3_network_connections(
            reduce_counts=(22, 66, 132), workload=wl_small
        )
        sidr = [r.sidr_connections for r in rows]
        hadoop = [r.hadoop_connections for r in rows]
        assert hadoop[2] / hadoop[0] == 6
        assert sidr[2] / sidr[0] < 2  # near-flat (paper: 2,820 -> 3,031)


class TestPartitionMicro:
    def test_both_measured(self):
        res = sec45_partition_micro(num_keys=200_000, runs=2)
        assert res.default_seconds > 0
        assert res.partition_plus_seconds > 0
        # partition+ is the same order of magnitude (paper: 1.1x; ours
        # is numpy-searchsorted-bound, allow up to ~6x under CI noise).
        assert res.slowdown < 6.0


class TestAblations:
    def test_skew_bound_tradeoff(self, wl_small):
        rows = ablation_skew_bound(
            bounds=(10, 1000, 100_000), num_reduces=24, workload=wl_small
        )
        units = [r.unit_volume for r in rows]
        assert units == sorted(units)  # bigger bound -> bigger unit
        skews = [r.max_skew_cells for r in rows]
        for r in rows:
            assert r.max_skew_cells <= max(r.unit_volume, r.skew_bound)

    def test_store_vs_recompute(self, wl_small):
        res = ablation_store_vs_recompute(num_reduces=24, workload=wl_small)
        assert res.store_seconds > 0
        assert res.recompute_one_seconds > 0
        # One-off recompute of a single block is cheaper than the full map.
        assert res.recompute_one_seconds < res.store_seconds * 2


class TestReport:
    def test_format_table(self):
        from repro.bench.report import format_table

        text = format_table(
            ["name", "value"], [["a", 1], ["b", 22.5]], title="T"
        )
        assert "T" in text and "22.5" in text

    def test_format_series(self):
        from repro.bench.report import format_series
        from repro.sidr.early_results import CompletionCurve

        c = CompletionCurve((1.0, 2.0), (0.5, 1.0))
        text = format_series({"x": c}, title="curves", samples=4)
        assert "x" in text and "100.0%" in text

    def test_format_curve(self):
        from repro.bench.report import format_curve
        from repro.sidr.early_results import CompletionCurve

        c = CompletionCurve((1.0, 2.0), (0.5, 1.0))
        assert "50.0%" in format_curve(c, samples=3)
        assert "(empty)" in format_curve(CompletionCurve((), ()), label="e")
