"""Process-engine tests: oracle identity, worker crashes, spill lifecycle.

``run_processes`` must sit on the serial → threaded → process ladder
without changing a single output byte: every fuzz operator, both data
planes, worker death mid-map, speculation races over file segments, and
the per-job spill directory's no-leak guarantee (success, failure, and
deadline-partial) are pinned here.  The cross-engine fuzz matrix
(``repro.cli verify``) covers the same ground probabilistically; these
are the deterministic anchors.
"""

import glob
import os
import signal

import pytest

from repro.errors import JobFailedError, WorkerCrashError
from repro.faults import FaultKind, FaultRule, InjectionPlan
from repro.mapreduce.engine import (
    DependencyBarrier,
    GlobalBarrier,
    LocalEngine,
    RetryPolicy,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import IdentityMapper
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.reducer import FunctionReducer
from repro.mapreduce.spillfiles import SpillDirectory
from repro.mapreduce.splits import ByteRangeSplit
from repro.spec import SpeculationPolicy
from repro.verify.cases import OPERATOR_NAMES, generate_case
from repro.verify.fuzz import _make_job
from repro.verify.oracle import (
    canonicalize_records,
    oracle_records,
    records_digest,
)

from tests.test_mapreduce_engine import counting_job, ranged_job

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)
FAST_SPEC = SpeculationPolicy(hang_timeout=0.08, heartbeat_interval=0.01)


def small_engine(**kw):
    """Process engine sized for 1-core CI boxes: four workers total."""
    kw.setdefault("map_workers", 2)
    kw.setdefault("reduce_workers", 2)
    return LocalEngine(**kw)


def spill_entries(root):
    return glob.glob(os.path.join(str(root), "repro-spill-*"))


# --------------------------------------------------------------------- #
# Oracle byte-identity
# --------------------------------------------------------------------- #
class TestOracleIdentity:
    """Every fuzz operator, both planes, vs the brute-force oracle."""

    @pytest.mark.parametrize("operator", OPERATOR_NAMES)
    @pytest.mark.parametrize("plane", ["record", "columnar"])
    def test_operator_matches_oracle(self, operator, plane):
        case = generate_case(0, operators=(operator,))
        plan, data = case.build()
        expected = records_digest(oracle_records(plan, data))
        job, barrier = _make_job(case, plane)
        res = small_engine().run_processes(job, barrier)
        got = records_digest(canonicalize_records(res.all_records()))
        assert got == expected

    def test_matches_serial_and_threaded(self):
        """Ladder check on one job conf: all three modes byte-identical."""
        serial = LocalEngine().run_serial(counting_job(), GlobalBarrier())
        threaded = LocalEngine().run_threaded(counting_job(), GlobalBarrier())
        proc = small_engine().run_processes(counting_job(), GlobalBarrier())
        assert (
            proc.all_records()
            == serial.all_records()
            == threaded.all_records()
        )
        # The counters the shuffle derives from segment manifests must
        # match the in-memory planes' accounting too.
        for name in ("map.output.records", "shuffle.records",
                     "reduce.output.records"):
            assert proc.counters.get(name) == serial.counters.get(name), name


# --------------------------------------------------------------------- #
# Worker crash ≈ FaultKind.CRASH
# --------------------------------------------------------------------- #
def suicidal_job(tmp_path, num_splits=4, num_reduces=2):
    """Map 1's first attempt SIGKILLs its own worker process; later
    attempts find the sentinel file and run normally."""
    sentinel = str(tmp_path / "killed-once")

    def reader(split):
        if split.index == 1 and not os.path.exists(sentinel):
            with open(sentinel, "w") as fh:
                fh.write("x")
            os.kill(os.getpid(), signal.SIGKILL)
        for j in range(5):
            yield ((j,), 1)

    return JobConf(
        name="suicidal",
        splits=[
            ByteRangeSplit(index=i, path="/f", start=i * 10, length=10)
            for i in range(num_splits)
        ],
        reader_factory=reader,
        mapper_factory=IdentityMapper,
        reducer_factory=lambda: FunctionReducer(
            lambda k, vals: [(k, sum(vals))]
        ),
        partitioner=RangePartitioner((5,), [2, 5]),
        num_reduce_tasks=num_reduces,
    )


class TestWorkerCrash:
    def test_killed_worker_is_retried_like_a_crash_fault(self, tmp_path):
        clean = LocalEngine().run_serial(
            counting_job(num_splits=4, num_reduces=2), GlobalBarrier()
        )
        res = small_engine(retry=FAST_RETRY).run_processes(
            suicidal_job(tmp_path), GlobalBarrier()
        )
        assert res.all_records() == clean.all_records()
        assert res.counters.get("task.retries") == 1
        assert res.counters.get("task.failures") == 1

    def test_killed_worker_without_retry_fails_with_worker_crash(
        self, tmp_path
    ):
        eng = small_engine(retry=RetryPolicy(max_attempts=1))
        with pytest.raises(JobFailedError) as ei:
            eng.run_processes(suicidal_job(tmp_path), GlobalBarrier())
        assert any(
            isinstance(e, WorkerCrashError) for e in ei.value.errors
        )

    def test_injected_fault_fires_inside_worker(self):
        """The plan's attempt-windowed faults fire inside the worker and
        the error type round-trips the pipe for normal retry
        accounting (``active_on_attempt`` is pure over the attempt
        number, so per-worker copies of the plan stay consistent)."""
        plan = InjectionPlan(
            rules=(
                FaultRule(
                    task="map",
                    kind=FaultKind.TRANSIENT,
                    indices=frozenset({2}),
                    times=1,
                ),
            )
        )
        clean = LocalEngine().run_serial(counting_job(), GlobalBarrier())
        res = small_engine(retry=FAST_RETRY, faults=plan).run_processes(
            counting_job(), GlobalBarrier()
        )
        assert res.all_records() == clean.all_records()
        assert res.counters.get("faults.injected") == 1


# --------------------------------------------------------------------- #
# Speculation races over file segments
# --------------------------------------------------------------------- #
def hang_plan(index=1, times=1):
    return InjectionPlan(
        rules=(
            FaultRule(
                task="map",
                kind=FaultKind.HANG,
                indices=frozenset({index}),
                times=times,
            ),
        )
    )


class TestSpeculationRace:
    def test_backup_wins_and_loser_segments_are_dropped(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        clean = LocalEngine().run_serial(counting_job(), GlobalBarrier())
        eng = small_engine(
            retry=FAST_RETRY, speculation=FAST_SPEC, faults=hang_plan()
        )
        res = eng.run_processes(counting_job(), GlobalBarrier())
        assert res.all_records() == clean.all_records()
        # The hung primary was killed (cancelled), the backup committed.
        assert res.counters.get("task.speculations") == 1
        assert res.counters.get("task.cancelled") == 1
        assert spill_entries(tmp_path) == []

    def test_supersede_unlinks_older_attempt_dirs(self, tmp_path, monkeypatch):
        """Unit check of the on-disk supersede rule: committing attempt
        n+1 removes attempt n's segment directory."""
        from repro.mapreduce.procpool import ProcessRunner

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        runner = ProcessRunner.__new__(ProcessRunner)
        runner._spill = SpillDirectory("supersede-unit")
        import threading

        runner._lock = threading.Lock()
        runner._on_disk = {}
        d0 = runner._spill.attempt_dir(3, 0)
        d1 = runner._spill.attempt_dir(3, 1)
        os.makedirs(d0)
        runner._note_committed(3, 0, d0)
        os.makedirs(d1)
        runner._note_committed(3, 1, d1)
        assert not os.path.exists(d0)
        assert os.path.exists(d1)
        runner._spill.cleanup()
        assert spill_entries(tmp_path) == []


# --------------------------------------------------------------------- #
# Spill-directory lifecycle
# --------------------------------------------------------------------- #
class TestSpillLifecycle:
    def test_no_leak_after_success(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        small_engine().run_processes(counting_job(), GlobalBarrier())
        assert spill_entries(tmp_path) == []

    def test_no_leak_after_job_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        plan = InjectionPlan(
            rules=(
                FaultRule(
                    task="map",
                    kind=FaultKind.CRASH,
                    indices=frozenset({0}),
                    times=99,
                ),
            )
        )
        eng = small_engine(retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
                           faults=plan)
        with pytest.raises(JobFailedError):
            eng.run_processes(counting_job(), GlobalBarrier())
        assert spill_entries(tmp_path) == []

    def test_no_leak_after_deadline_partial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        job, deps = ranged_job()
        job.deadline = 0.3
        job.on_deadline = "partial"
        eng = small_engine(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=hang_plan(index=0, times=5),
        )
        res = eng.run_processes(job, DependencyBarrier(deps))
        assert res.partial
        assert spill_entries(tmp_path) == []

    def test_spill_dir_env_is_honored(self, tmp_path, monkeypatch):
        """Segments really live under $REPRO_SPILL_DIR while running."""
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        seen = []

        def on_reduce(partition, records):
            seen.extend(spill_entries(tmp_path))

        small_engine().run_processes(
            counting_job(), GlobalBarrier(), on_reduce_complete=on_reduce
        )
        assert seen  # the per-job dir existed mid-run, under tmp_path
        assert spill_entries(tmp_path) == []


class TestSpillDirectoryNaming:
    """Per-job spill-dir names are collision-proof by construction:
    pid + monotonic nonce + random tail, with exclusive creation as the
    final guard (the resident service runs many engines side by side in
    one process)."""

    def test_same_job_name_never_collides(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        dirs = [SpillDirectory("same-job") for _ in range(8)]
        paths = [d.path for d in dirs]
        assert len(set(paths)) == 8
        for d in dirs:
            assert os.path.isdir(d.path)

    def test_nonce_uniquifies_even_with_a_constant_random_tail(
        self, tmp_path, monkeypatch
    ):
        """Degrade uuid4 to a constant: the monotonic nonce alone must
        still keep concurrent same-name jobs apart."""
        import uuid as uuid_mod

        from repro.mapreduce import spillfiles

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))

        class FakeUuid:
            hex = "deadbeef" * 4

        monkeypatch.setattr(spillfiles.uuid, "uuid4", lambda: FakeUuid())
        paths = [SpillDirectory("svc-j00001").path for _ in range(5)]
        assert len(set(paths)) == 5
        assert all("deadbeef" in p for p in paths)
        # distinct nonce fields are what kept them apart
        nonces = {p.split("-n")[-1].split("-")[0] for p in paths}
        assert len(nonces) == 5

    def test_job_id_tag_and_sanitization(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        d = SpillDirectory("ignored name", job_id="svc/j42!x")
        base = os.path.basename(d.path)
        assert base.startswith("repro-spill-svc_j42_x-")
        assert f"-{os.getpid()}-" in base

    def test_exclusive_creation_retries_past_an_existing_dir(
        self, tmp_path, monkeypatch
    ):
        """Pre-create the exact path the next (nonce, uuid) draw would
        produce: the constructor must skip it, not reuse it."""
        import itertools

        from repro.mapreduce import spillfiles

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))

        class FakeUuid:
            hex = "cafecafe" * 4

        monkeypatch.setattr(spillfiles.uuid, "uuid4", lambda: FakeUuid())
        counter = itertools.count(7)
        monkeypatch.setattr(spillfiles, "_DIR_NONCE", counter)
        taken = os.path.join(
            str(tmp_path),
            f"repro-spill-job-{os.getpid()}-n000007-cafecafe",
        )
        os.makedirs(taken)
        d = SpillDirectory("job")
        assert d.path != taken
        assert "-n000008-" in d.path


# --------------------------------------------------------------------- #
# Worker bodies, in-process
# --------------------------------------------------------------------- #
class _RecordingBus:
    def __init__(self):
        self.events = []

    def publish(self, type, **fields):
        self.events.append((type, fields))


def _worker_ctx(job, spill_root):
    from repro.obs import JobObservability

    return {
        "job": job,
        "faults": None,
        "spill_root": str(spill_root),
        "hb_interval": 999.0,  # no heartbeat noise in unit tests
        "obs": JobObservability(job.name + "-worker", enabled=False),
    }


class TestWorkerFunctions:
    """The map/reduce bodies that normally run inside forked workers,
    driven in-process: segment round-trip, protocol loop, error ferry.
    (Fork-side execution is exercised end-to-end above; these pin the
    pieces deterministically and keep them visible to coverage.)"""

    def _map_all(self, job, ctx, bus):
        from repro.mapreduce.procpool import _worker_map
        from repro.mapreduce.spillfiles import handles_from_manifest

        handles = []
        for i in range(job.num_map_tasks):
            out = _worker_map(ctx, {"index": i, "attempt": 0}, bus)
            assert out["manifest"], f"split {i} spilled nothing"
            assert os.path.basename(out["directory"]) == f"map-{i:05d}-a0000"
            handles.extend(
                handles_from_manifest(i, out["directory"], out["manifest"])
            )
        return handles

    @pytest.mark.parametrize("plane", ["record", "columnar"])
    def test_map_reduce_round_trip_through_segments(self, tmp_path, plane):
        from repro.mapreduce.procpool import _worker_reduce

        case = generate_case(0, operators=("sum",))
        job, _ = _make_job(case, plane)
        expected = LocalEngine().run_serial(job, GlobalBarrier())
        ctx = _worker_ctx(job, tmp_path)
        bus = _RecordingBus()
        handles = self._map_all(job, ctx, bus)
        if plane == "columnar":
            # The documented segment format: one keys/counts pair plus
            # one .npy per state column, per partition.
            names = os.listdir(handles[0].directory)
            assert any(n.endswith(".keys.npy") for n in names)
            assert any(n.endswith(".counts.npy") for n in names)
        records = []
        for p in range(job.num_reduce_tasks):
            out = _worker_reduce(
                ctx,
                {
                    "partition": p,
                    "attempt": 0,
                    "segments": [h for h in handles if h.partition == p],
                },
                bus,
            )
            records.extend(out["records"])
        assert canonicalize_records(records) == canonicalize_records(
            expected.all_records()
        )

    def test_worker_main_protocol_loop(self, tmp_path):
        import multiprocessing as mp
        import threading
        import uuid

        from repro.errors import SegmentMissingError
        from repro.mapreduce.procpool import _CONTEXTS, _worker_main
        from repro.mapreduce.spillfiles import SegmentHandle
        from repro.mapreduce.types import MapTaskId

        job = counting_job(num_splits=1, num_reduces=1)
        pool_id = uuid.uuid4().hex
        _CONTEXTS[pool_id] = _worker_ctx(job, tmp_path)
        req_recv, req_send = mp.Pipe(duplex=False)
        res_recv, res_send = mp.Pipe(duplex=False)
        t = threading.Thread(
            target=_worker_main, args=(pool_id, req_recv, res_send)
        )
        t.start()

        def next_reply():
            while True:
                msg = res_recv.recv()
                if msg[0] != "event":  # skip forwarded heartbeats
                    return msg

        try:
            req_send.send(("map", 7, {"index": 0, "attempt": 0}))
            tag, task_id, body = next_reply()
            assert (tag, task_id) == ("done", 7)
            assert body["manifest"]
            # A reduce whose segments vanished (supersede race) ferries
            # the retryable error back instead of killing the loop.
            bad = SegmentHandle(
                map_id=MapTaskId(0),
                partition=0,
                num_records=3,
                source_records=3,
                approx_serialized_bytes=24,
                plane="record",
                directory=str(tmp_path / "gone"),
            )
            req_send.send(
                ("reduce", 8, {"partition": 0, "attempt": 0, "segments": [bad]})
            )
            tag, task_id, body = next_reply()
            assert (tag, task_id) == ("err", 8)
            assert isinstance(body, SegmentMissingError)
        finally:
            req_send.send(None)  # graceful-shutdown sentinel
            t.join(timeout=5.0)
            _CONTEXTS.pop(pool_id, None)
        assert not t.is_alive()

    def test_sendable_wraps_unpicklable_errors(self):
        from repro.errors import ReproError
        from repro.mapreduce.procpool import _sendable

        plain = ValueError("boom")
        assert _sendable(plain) is plain

        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        wrapped = _sendable(Unpicklable("lost"))
        assert isinstance(wrapped, ReproError)
        assert "Unpicklable" in str(wrapped)


# --------------------------------------------------------------------- #
# Composition: recovery + consume-on-fetch over file manifests
# --------------------------------------------------------------------- #
class TestRecoveryComposition:
    @pytest.mark.parametrize(
        "recovery,reexec_min",
        [("persisted", 0), ("reexecute-deps", 2)],
    )
    def test_reduce_failure_recovers_over_segments(
        self, recovery, reexec_min, tmp_path, monkeypatch
    ):
        from repro.faults import RecoveryModel, WHEN_AFTER_FETCH

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        job, deps = ranged_job()
        plan = InjectionPlan(
            rules=(
                FaultRule(
                    task="reduce",
                    kind=FaultKind.TRANSIENT,
                    indices=frozenset({1}),
                    times=1,
                    when=WHEN_AFTER_FETCH,
                ),
            )
        )
        eng = small_engine(
            retry=FAST_RETRY,
            faults=plan,
            recovery=RecoveryModel.parse(recovery),
        )
        res = eng.run_processes(job, DependencyBarrier(deps))
        clean_job, _ = ranged_job()
        clean = LocalEngine().run_serial(clean_job, GlobalBarrier())
        assert res.all_records() == clean.all_records()
        assert res.counters.get("recovery.maps_reexecuted") == reexec_min
        assert spill_entries(tmp_path) == []
