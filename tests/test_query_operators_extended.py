"""Tests for the §2.2 example-query operators (range, range_exceeds, sort)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.operators import (
    Chunk,
    RangeExceedsOp,
    RangeOp,
    SortOp,
    get_operator,
)

values_arrays = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=1, max_size=25
).map(np.asarray)


def chunk_of(arr):
    arr = np.asarray(arr, dtype=np.float64).reshape(-1)
    return Chunk(arr, arr.size)


class TestRangeOp:
    def test_reference(self):
        assert RangeOp().reference(np.array([2.0, 9.0, 4.0])) == 7.0

    def test_single_value_zero_range(self):
        assert RangeOp().reference(np.array([5.0])) == 0.0

    @given(values_arrays, st.data())
    @settings(max_examples=60)
    def test_split_invariance(self, arr, data):
        op = RangeOp()
        n = len(arr)
        cut = data.draw(st.integers(0, n))
        pieces = [arr[:cut], arr[cut:]]
        partials = [op.map_partial(chunk_of(p)) for p in pieces if p.size]
        got = op.finalize(op.combine(partials))
        assert got == pytest.approx(float(arr.max() - arr.min()))


class TestRangeExceedsOp:
    def test_paper_query2_semantics(self):
        """§2.2: 'find all locations where the 24-hour temperature
        variations exceed X'."""
        op = RangeExceedsOp(threshold=10.0)
        hot_day = np.array([50.0, 65.0])  # variation 15 > 10
        calm_day = np.array([50.0, 55.0])  # variation 5
        assert op.reference(hot_day) == {"exceeds": True, "variation": 15.0}
        assert op.reference(calm_day) == {"exceeds": False, "variation": 5.0}

    def test_combine_across_splits(self):
        op = RangeExceedsOp(threshold=3.0)
        p1 = op.map_partial(chunk_of([1.0, 2.0]))
        p2 = op.map_partial(chunk_of([5.5]))
        out = op.finalize(op.combine([p1, p2]))
        assert out["exceeds"] and out["variation"] == pytest.approx(4.5)

    def test_registry(self):
        assert get_operator("range_exceeds", threshold=2.0).threshold == 2.0
        with pytest.raises(QueryError):
            get_operator("range_exceeds")


class TestSortOp:
    def test_reference(self):
        assert SortOp().reference(np.array([3.0, 1.0, 2.0])) == [1.0, 2.0, 3.0]

    def test_holistic_flag(self):
        assert not SortOp.distributive

    @given(values_arrays, st.data())
    @settings(max_examples=60)
    def test_split_invariance(self, arr, data):
        op = SortOp()
        n = len(arr)
        cut = data.draw(st.integers(0, n))
        pieces = [arr[:cut], arr[cut:]]
        partials = [op.map_partial(chunk_of(p)) for p in pieces if p.size]
        got = op.finalize(op.combine(partials))
        assert got == pytest.approx(sorted(float(x) for x in arr))

    def test_source_counts_preserved(self):
        op = SortOp()
        p = op.combine(
            [op.map_partial(chunk_of([1.0])), op.map_partial(chunk_of([2.0, 3.0]))]
        )
        assert p.source_count == 3


class TestEndToEndSection22:
    """The three §2.2 example queries through the full SIDR pipeline."""

    def test_daily_variation_exceeds(self, temp_field, temp_data):
        from repro.mapreduce.engine import LocalEngine
        from repro.query.language import StructuralQuery
        from repro.query.splits import slice_splits
        from repro.sidr.planner import build_sidr_job

        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(1, 1, 1),  # per-cell daily variation window
            operator=get_operator("range_exceeds", threshold=0.5),
        )
        # Per-location daily range needs a window over time; use 2-day
        # windows over each location instead (24h variation analogue).
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(2, 1, 1),
            operator=get_operator("range_exceeds", threshold=2.0),
        )
        plan = q.compile(temp_field.metadata)
        splits = slice_splits(plan, num_splits=5)
        job, barrier, _ = build_sidr_job(plan, splits, 3, temp_data)
        res = LocalEngine().run_serial(job, barrier)
        got = dict(res.all_records())
        oracle = plan.reference_output(temp_data)
        assert got.keys() == oracle.keys()
        for k in oracle:
            assert got[k]["exceeds"] == oracle[k]["exceeds"]
            assert got[k]["variation"] == pytest.approx(oracle[k]["variation"])
        assert any(v["exceeds"] for v in got.values())

    def test_sort_per_day(self, temp_field, temp_data):
        from repro.mapreduce.engine import LocalEngine
        from repro.query.language import StructuralQuery
        from repro.query.splits import slice_splits
        from repro.sidr.planner import build_sidr_job

        # "Sort the data points for each day by temperature": one
        # instance per day covering the whole grid.
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(1, 10, 6),
            operator=get_operator("sort"),
        )
        plan = q.compile(temp_field.metadata)
        splits = slice_splits(plan, num_splits=6)
        job, barrier, _ = build_sidr_job(plan, splits, 3, temp_data)
        res = LocalEngine().run_serial(job, barrier)
        got = dict(res.all_records())
        for k, v in got.items():
            day = k[0]
            want = sorted(float(x) for x in temp_data[day].reshape(-1))
            assert v == pytest.approx(want)
