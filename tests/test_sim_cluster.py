"""Unit tests for cluster slot accounting and the cost model."""

import random

import pytest

from repro.errors import SchedulerError, SimulationError
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.costmodel import MB, CostModel


class TestClusterConfig:
    def test_paper_defaults(self):
        c = ClusterConfig()
        assert c.num_nodes == 24
        assert c.map_slots_per_node == 4
        assert c.reduce_slots_per_node == 3
        assert c.total_map_slots == 96
        assert c.total_reduce_slots == 72

    def test_validation(self):
        with pytest.raises(SchedulerError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(SchedulerError):
            ClusterConfig(map_slots_per_node=0)


class TestSlots:
    def test_acquire_release(self):
        c = SimCluster(ClusterConfig(num_nodes=2))
        h = c.host_names[0]
        for _ in range(4):
            c.acquire_map_slot(h)
        with pytest.raises(SchedulerError):
            c.acquire_map_slot(h)
        c.release_map_slot(h)
        c.acquire_map_slot(h)

    def test_over_release_detected(self):
        c = SimCluster(ClusterConfig(num_nodes=2))
        with pytest.raises(SchedulerError):
            c.release_map_slot(c.host_names[0])

    def test_reduce_slots_independent(self):
        c = SimCluster(ClusterConfig(num_nodes=1))
        h = c.host_names[0]
        for _ in range(3):
            c.acquire_reduce_slot(h)
        with pytest.raises(SchedulerError):
            c.acquire_reduce_slot(h)
        # map slots unaffected
        c.acquire_map_slot(h)

    def test_free_slot_queries(self):
        c = SimCluster(ClusterConfig(num_nodes=2))
        assert c.total_free_map_slots() == 8
        h = c.host_names[0]
        c.acquire_map_slot(h)
        assert c.free_map_slots(h) == 3
        assert len(c.hosts_with_free_map_slots()) == 2
        for _ in range(3):
            c.acquire_map_slot(h)
        assert c.hosts_with_free_map_slots() == [c.host_names[1]]


class TestCostModel:
    def test_read_time_locality(self):
        cm = CostModel()
        fully_local = cm.read_time(100 * MB, 1.0)
        fully_remote = cm.read_time(100 * MB, 0.0)
        assert fully_local < fully_remote

    def test_bad_fraction(self):
        with pytest.raises(SimulationError):
            CostModel().read_time(1, 1.5)

    def test_map_duration_components(self):
        cm = CostModel(task_overhead=0.0, jitter_sigma=0.0)
        rng = random.Random(0)
        d1 = cm.map_duration(
            read_bytes=64 * MB, cells=1000, output_bytes=0,
            local_fraction=1.0, rng=rng,
        )
        d2 = cm.map_duration(
            read_bytes=128 * MB, cells=1000, output_bytes=0,
            local_fraction=1.0, rng=rng,
        )
        assert d2 > d1

    def test_io_slowdown_scales_io_only(self):
        cm = CostModel(task_overhead=0.0, jitter_sigma=0.0)
        rng = random.Random(0)
        base = cm.map_duration(
            read_bytes=64 * MB, cells=0, output_bytes=0,
            local_fraction=1.0, rng=rng,
        )
        slowed = cm.map_duration(
            read_bytes=64 * MB, cells=0, output_bytes=0,
            local_fraction=1.0, rng=rng, io_slowdown=2.0,
        )
        assert slowed == pytest.approx(2 * base)
        with pytest.raises(SimulationError):
            cm.map_duration(
                read_bytes=1, cells=0, output_bytes=0,
                local_fraction=1.0, rng=rng, io_slowdown=0.5,
            )

    def test_jitter_deterministic_per_seed(self):
        cm = CostModel(jitter_sigma=0.2)
        a = cm.jitter(random.Random(5))
        b = cm.jitter(random.Random(5))
        assert a == b and a != 1.0

    def test_jitter_disabled(self):
        assert CostModel(jitter_sigma=0.0).jitter(random.Random(1)) == 1.0

    def test_effective_fetch_rate_regimes(self):
        cm = CostModel()
        lone = cm.effective_fetch_rate(1, 24)
        crowded = cm.effective_fetch_rate(72, 24)
        assert lone == cm.fetch_rate_cap
        assert crowded < lone
        assert crowded >= cm.fetch_rate_floor

    def test_reduce_processing_dense_vs_sparse(self):
        cm = CostModel(task_overhead=0.0)
        rng = random.Random(0)
        dense = cm.reduce_processing_time(
            input_bytes=0, output_bytes=100 * MB, dense_output=True, rng=rng
        )
        sparse = cm.reduce_processing_time(
            input_bytes=0, output_bytes=100 * MB, dense_output=False, rng=rng
        )
        assert sparse > dense

    def test_invalid_rates_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(disk_rate_per_slot=0)
        with pytest.raises(SimulationError):
            CostModel(jitter_sigma=-1)
