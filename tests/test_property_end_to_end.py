"""Hypothesis-driven end-to-end equivalence over the whole stack.

For randomly drawn dataset shapes, extraction shapes (dense or strided),
subsets, operators, split counts and reducer counts, the full SIDR
pipeline — partition+, dependency analysis, dependency-barrier engine
execution with count-annotation validation — must produce exactly the
serial oracle's output.  This single property exercises every layer at
once and is the strongest correctness statement the reproduction makes:
*no* combination of query geometry and parallelism may change an answer
or start a reduce early.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.mapreduce.engine import GlobalBarrier, LocalEngine
from repro.mapreduce.partitioner import HashPartitioner
from repro.query.language import StructuralQuery
from repro.query.operators import (
    CountOp,
    MaxOp,
    MeanOp,
    MedianOp,
    MinOp,
    StdDevOp,
    SumOp,
    ThresholdFilterOp,
)
from repro.query.splits import slice_splits
from repro.scidata.metadata import simple_metadata
from repro.sidr.planner import build_sidr_job

OPERATORS = [
    SumOp(),
    CountOp(),
    MeanOp(),
    MinOp(),
    MaxOp(),
    StdDevOp(),
    MedianOp(),
    ThresholdFilterOp(0.0),
]


@st.composite
def random_query_case(draw):
    rank = draw(st.integers(1, 3))
    dims = tuple(draw(st.integers(2, 10)) for _ in range(rank))
    extraction = tuple(
        draw(st.integers(1, max(1, dims[d]))) for d in range(rank)
    )
    strided = draw(st.booleans())
    stride = None
    if strided:
        stride = tuple(
            e + draw(st.integers(0, 2)) for e in extraction
        )
    # Optional subset: random corner, remaining shape.
    use_subset = draw(st.booleans())
    subset = None
    if use_subset:
        from repro.arrays.slab import Slab

        corner = tuple(draw(st.integers(0, dims[d] - 1)) for d in range(rank))
        shape = tuple(
            draw(st.integers(1, dims[d] - corner[d])) for d in range(rank)
        )
        subset = Slab(corner, shape)
    op = draw(st.sampled_from(OPERATORS))
    num_splits = draw(st.integers(1, 6))
    num_reduces = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    return dims, extraction, stride, subset, op, num_splits, num_reduces, seed


@given(case=random_query_case())
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_query_full_equivalence(case):
    dims, extraction, stride, subset, op, num_splits, num_reduces, seed = case
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1, size=dims)
    meta = simple_metadata("v", dims, dtype="double")
    q = StructuralQuery(
        variable="v",
        extraction_shape=extraction,
        operator=op,
        subset=subset,
        stride=stride,
    )
    from repro.errors import QueryError

    try:
        plan = q.compile(meta)
    except QueryError:
        return  # geometry invalid for this dataset: correctly rejected
    oracle = plan.reference_output(data)

    splits = slice_splits(plan, num_splits=num_splits)
    try:
        job, barrier, sidr = build_sidr_job(
            plan, splits, num_reduces, source=data
        )
    except PartitionError:
        # More reducers than unit-shape instances: correctly rejected.
        return
    res = LocalEngine().run_serial(job, barrier)
    got = dict(res.all_records())
    assert set(got) == set(oracle)
    for k, want in oracle.items():
        if isinstance(want, list):
            assert got[k] == pytest.approx(want)
        else:
            assert got[k] == pytest.approx(want, rel=1e-9, abs=1e-9)
    # The count-annotation validator observed every reduce start exactly.
    validator = job.context["reduce_start_validator"]
    assert validator.observed == {
        l: e for l, e in enumerate(validator.expected)
    }


@given(case=random_query_case())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_query_stock_equals_sidr(case):
    """Hash-partitioned global-barrier execution and SIDR execution agree
    on every randomly drawn query (both equal the oracle individually,
    but this checks them against each other without the oracle loop)."""
    dims, extraction, stride, subset, op, num_splits, num_reduces, seed = case
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1, size=dims)
    meta = simple_metadata("v", dims, dtype="double")
    q = StructuralQuery(
        variable="v",
        extraction_shape=extraction,
        operator=op,
        subset=subset,
        stride=stride,
    )
    from repro.errors import QueryError
    from repro.mapreduce.job import JobConf
    from repro.mapreduce.mapper import ChunkAggregateMapper
    from repro.mapreduce.reducer import AggregateReducer
    from repro.query.recordreader import make_reader_factory

    try:
        plan = q.compile(meta)
    except QueryError:
        return
    splits = slice_splits(plan, num_splits=num_splits)
    try:
        job, barrier, _ = build_sidr_job(plan, splits, num_reduces, source=data)
    except PartitionError:
        return
    eng = LocalEngine()
    sidr = eng.run_serial(job, barrier)
    stock_job = JobConf(
        name="stock",
        splits=list(splits),
        reader_factory=make_reader_factory(data, plan),
        mapper_factory=lambda: ChunkAggregateMapper(plan.operator),
        reducer_factory=lambda: AggregateReducer(plan.operator),
        partitioner=HashPartitioner(),
        num_reduce_tasks=num_reduces,
    )
    stock = eng.run_serial(stock_job, GlobalBarrier())
    a = dict(sidr.all_records())
    b = dict(stock.all_records())
    assert set(a) == set(b)
    for k in a:
        assert a[k] == pytest.approx(b[k], rel=1e-9, abs=1e-9)
