"""Unit tests for simulated job specs and intermediate distributions."""

import pytest

from repro.errors import SimulationError
from repro.query.splits import slice_splits
from repro.sidr.planner import build_plan
from repro.sim.workload import (
    DependencyDistribution,
    ParitySkewDistribution,
    SimJobSpec,
    SimSplit,
    UniformDistribution,
)


def mk_split(i, **kw):
    defaults = dict(read_bytes=100, cells=25, output_bytes=90)
    defaults.update(kw)
    return SimSplit(index=i, **defaults)


class TestUniform:
    def test_shares_sum_to_one(self):
        d = UniformDistribution(4)
        assert sum(d.shares(0).values()) == pytest.approx(1.0)

    def test_share_scalar(self):
        d = UniformDistribution(4)
        assert d.share(0, 2) == 0.25
        assert d.share(0, 9) == 0.0

    def test_producers_all(self):
        d = UniformDistribution(4)
        assert d.producers_of(1, 10) == frozenset(range(10))


class TestParitySkew:
    def test_only_one_parity_receives(self):
        d = ParitySkewDistribution(6, parity=0)
        s = d.shares(0)
        assert set(s) == {0, 2, 4}
        assert sum(s.values()) == pytest.approx(1.0)

    def test_starved_reducers_have_no_producers(self):
        d = ParitySkewDistribution(6, parity=0)
        assert d.producers_of(1, 5) == frozenset()
        assert d.producers_of(2, 5) == frozenset(range(5))

    def test_loaded_reducers_get_double(self):
        balanced = UniformDistribution(6)
        skewed = ParitySkewDistribution(6)
        assert skewed.share(0, 0) == pytest.approx(2 * balanced.share(0, 0))

    def test_validation(self):
        with pytest.raises(SimulationError):
            ParitySkewDistribution(1)
        with pytest.raises(SimulationError):
            ParitySkewDistribution(4, parity=2)


class TestDependencyDistribution:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(SimulationError):
            DependencyDistribution([{0: 0.5}], 2)

    def test_out_of_range_reduce(self):
        with pytest.raises(SimulationError):
            DependencyDistribution([{5: 1.0}], 2)

    def test_producers_inverted(self):
        d = DependencyDistribution([{0: 1.0}, {0: 0.5, 1: 0.5}], 2)
        assert d.producers_of(0, 2) == frozenset({0, 1})
        assert d.producers_of(1, 2) == frozenset({1})

    def test_from_sidr_plan_consistent(self, weekly_mean_plan):
        """Shares derived from the plan agree with its dependency map and
        sum to one per map."""
        splits = slice_splits(weekly_mean_plan, num_splits=7)
        plan = build_plan(weekly_mean_plan, splits, 4)
        dist = DependencyDistribution.from_sidr_plan(plan)
        for m in range(7):
            s = dist.shares(m)
            assert set(s) == set(plan.deps.producers[m])
            assert sum(s.values()) == pytest.approx(1.0)
        for l in range(4):
            assert dist.producers_of(l, 7) == plan.deps.dependencies[l]


class TestSimSplit:
    def test_validation(self):
        with pytest.raises(SimulationError):
            mk_split(0, read_bytes=0)
        with pytest.raises(SimulationError):
            mk_split(0, output_bytes=-1)
        with pytest.raises(SimulationError):
            mk_split(0, local_fraction_preferred=1.5)

    def test_locality_lookup(self):
        sp = mk_split(
            0,
            preferred_hosts=("a",),
            local_fraction_preferred=0.9,
            local_fraction_other=0.2,
        )
        assert sp.local_fraction_on("a") == 0.9
        assert sp.local_fraction_on("b") == 0.2


class TestSimJobSpec:
    def test_length_checks(self):
        splits = tuple(mk_split(i) for i in range(3))
        with pytest.raises(SimulationError):
            SimJobSpec(
                name="x",
                splits=splits,
                distribution=UniformDistribution(2),
                reduce_output_bytes=(1,),  # wrong length
            )

    def test_split_index_check(self):
        splits = (mk_split(0), mk_split(5))
        with pytest.raises(SimulationError):
            SimJobSpec(
                name="x",
                splits=splits,
                distribution=UniformDistribution(1),
                reduce_output_bytes=(1,),
            )

    def test_default_weights_uniform(self):
        splits = tuple(mk_split(i) for i in range(2))
        spec = SimJobSpec(
            name="x",
            splits=splits,
            distribution=UniformDistribution(4),
            reduce_output_bytes=(1, 1, 1, 1),
        )
        assert spec.weights() == (0.25, 0.25, 0.25, 0.25)
