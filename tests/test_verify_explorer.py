"""Interleaving explorer: hook seam, invariant checks, determinism."""

import pytest

from repro.errors import JobConfigError
from repro.faults import FaultKind, FaultRule, InjectionPlan, RecoveryModel
from repro.faults.plan import WHEN_AFTER_FETCH
from repro.mapreduce.engine import (
    DependencyBarrier,
    EngineTrace,
    LocalEngine,
    LogicalClock,
    RetryPolicy,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import IdentityMapper
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.reducer import FunctionReducer
from repro.mapreduce.splits import ByteRangeSplit
from repro.obs import JobObservability
from repro.verify import (
    HOOK_BARRIER_READY,
    HOOK_CLAIM,
    HOOK_FETCH,
    HOOK_POINTS,
    HOOK_REDUCE_START,
    HOOK_SPECULATE,
    HOOK_SPILL_COMMIT,
    ChaosHook,
    HookEvent,
    RecordingHook,
    check_interleaving_invariants,
    explore,
)
from repro.verify.hooks import _event_delay


def crafted_job():
    """3 maps / 2 reduces with disjoint dependencies: split i emits key
    (i,); reduce 0 depends on maps {0, 1}, reduce 1 on {2}."""

    def reader(split):
        yield ((split.index,), split.index * 10)
        yield ((split.index,), 1)

    job = JobConf(
        name="crafted",
        splits=[
            ByteRangeSplit(index=i, path="/f", start=i * 10, length=10)
            for i in range(3)
        ],
        reader_factory=reader,
        mapper_factory=IdentityMapper,
        reducer_factory=lambda: FunctionReducer(lambda k, vals: [(k, sum(vals))]),
        partitioner=RangePartitioner((3,), [2, 3]),
        num_reduce_tasks=2,
        contact_all_maps=False,
    )
    barrier = DependencyBarrier({0: frozenset({0, 1}), 1: frozenset({2})})
    return job, barrier


EXPECTED = {(0,): 1, (1,): 11, (2,): 21}


class TestHookSeam:
    def test_all_five_points_fire_threaded(self):
        job, barrier = crafted_job()
        hook = RecordingHook()
        res = LocalEngine(observability=False, scheduler_hook=hook).run_threaded(
            job, barrier
        )
        assert dict(res.all_records()) == EXPECTED
        # speculate only fires when a backup attempt launches
        assert hook.points_seen() == frozenset(HOOK_POINTS) - {HOOK_SPECULATE}

    def test_all_five_points_fire_serial(self):
        job, barrier = crafted_job()
        hook = RecordingHook()
        LocalEngine(observability=False, scheduler_hook=hook).run_serial(
            job, barrier
        )
        assert hook.points_seen() == frozenset(HOOK_POINTS) - {HOOK_SPECULATE}

    def test_events_carry_task_identity(self):
        job, barrier = crafted_job()
        hook = RecordingHook()
        LocalEngine(observability=False, scheduler_hook=hook).run_serial(
            job, barrier
        )
        spills = [e for e in hook.events if e.point == HOOK_SPILL_COMMIT]
        assert sorted(e.index for e in spills) == [0, 1, 2]
        fetches = [e for e in hook.events if e.point == HOOK_FETCH]
        # reduce 0 fetches maps {0,1}; reduce 1 fetches {2}
        assert sorted((e.index, e.info["map"]) for e in fetches) == [
            (0, 0), (0, 1), (1, 2),
        ]

    def test_no_hook_means_no_events(self):
        job, barrier = crafted_job()
        res = LocalEngine(observability=False).run_threaded(job, barrier)
        assert dict(res.all_records()) == EXPECTED

    def test_chaos_delay_is_deterministic_and_order_independent(self):
        kw = dict(max_delay=0.002, density=0.6)
        a = _event_delay(3, 1, HOOK_FETCH, "reduce", 0, 0, {"map": 1}, **kw)
        b = _event_delay(3, 1, HOOK_FETCH, "reduce", 0, 0, {"map": 1}, **kw)
        assert a == b
        assert 0.0 <= a <= 0.002
        # different schedule → (almost surely) different perturbation
        delays_s1 = [
            _event_delay(3, 1, HOOK_FETCH, "reduce", i, 0, None, **kw)
            for i in range(16)
        ]
        delays_s2 = [
            _event_delay(3, 2, HOOK_FETCH, "reduce", i, 0, None, **kw)
            for i in range(16)
        ]
        assert delays_s1 != delays_s2


class TestExplorer:
    def test_crafted_job_explores_clean(self):
        report = explore(crafted_job, schedules=4, seed=0)
        assert report.ok, report.summary()
        assert len(report.runs) == 4
        assert report.baseline_status == "ok"
        assert all(r.digest == report.baseline_digest for r in report.runs)
        assert all(r.num_events > 0 for r in report.runs)

    def test_explore_under_fault_plan_with_supersede(self):
        # Reduce 0 dies after consuming its fetch; REEXECUTE_DEPS
        # re-runs maps {0,1}, whose re-spills supersede the originals.
        faults = InjectionPlan(
            rules=(
                FaultRule(
                    task="reduce",
                    kind=FaultKind.TRANSIENT,
                    indices=frozenset({0}),
                    times=1,
                    when=WHEN_AFTER_FETCH,
                ),
            ),
            seed=0,
        )

        def factory(hook):
            return LocalEngine(
                observability=False,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
                faults=faults,
                recovery=RecoveryModel.REEXECUTE_DEPS,
                scheduler_hook=hook,
            )

        report = explore(
            crafted_job, schedules=4, seed=1, engine_factory=factory
        )
        assert report.ok, report.summary()
        # the fault actually fired: some schedule recorded a supersede
        assert report.baseline_status == "ok"

    def test_explorer_counts_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        report = explore(crafted_job, schedules=3, seed=0, metrics=m)
        assert report.ok
        assert m.counter("verify.explorer.schedules").value == 3
        assert m.counter("verify.explorer.violations").value == 0
        assert m.counter("verify.explorer.divergent").value == 0


def ev(seq, point, kind, index, attempt=0, **info):
    return HookEvent(
        seq=seq, point=point, kind=kind, index=index, attempt=attempt,
        info=info,
    )


class TestInvariantChecks:
    """Synthetic event logs: each invariant must catch its breach."""

    BARRIER = DependencyBarrier({0: frozenset({0, 1}), 1: frozenset({2})})

    def test_clean_log_passes(self):
        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 0, 0, partitions=(0,)),
            ev(1, HOOK_SPILL_COMMIT, "map", 1, 0, partitions=(0,)),
            ev(2, HOOK_BARRIER_READY, "reduce", 0, 0, completed=(0, 1)),
            ev(3, HOOK_CLAIM, "reduce", 0, 0),
            ev(4, HOOK_REDUCE_START, "reduce", 0, 0, completed=(0, 1)),
            ev(5, HOOK_FETCH, "reduce", 0, 0, map=0, map_attempt=0, empty=False),
            ev(6, HOOK_FETCH, "reduce", 0, 0, map=1, map_attempt=0, empty=False),
        ]
        assert (
            check_interleaving_invariants(
                events, barrier=self.BARRIER, total_maps=3
            )
            == []
        )

    def test_early_reduce_detected(self):
        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 0, 0, partitions=(0,)),
            ev(1, HOOK_BARRIER_READY, "reduce", 0, 0, completed=(0,)),
            ev(2, HOOK_REDUCE_START, "reduce", 0, 0, completed=(0,)),
        ]
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3
        )
        assert any(v.invariant == "no-early-reduce" for v in found)

    def test_reduce_start_without_barrier_ready_detected(self):
        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 0, 0, partitions=(0,)),
            ev(1, HOOK_SPILL_COMMIT, "map", 1, 0, partitions=(0,)),
            ev(2, HOOK_REDUCE_START, "reduce", 0, 0, completed=(0, 1)),
        ]
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3
        )
        assert [v.invariant for v in found] == ["no-early-reduce"]

    def test_fetch_outside_dependency_set_detected(self):
        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 2, 0, partitions=(1,)),
            ev(1, HOOK_FETCH, "reduce", 0, 0, map=2, map_attempt=0, empty=False),
        ]
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3
        )
        assert any(v.invariant == "fetch-discipline" for v in found)

    def test_stale_serve_detected(self):
        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 0, 0, partitions=(0,)),
            ev(1, HOOK_SPILL_COMMIT, "map", 0, 1, partitions=(0,),
               superseded=True),
            ev(2, HOOK_FETCH, "reduce", 0, 0, map=0, map_attempt=0, empty=False),
        ]
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3
        )
        assert any(v.invariant == "no-stale-serve" for v in found)

    def test_fetch_before_any_commit_detected(self):
        events = [
            ev(0, HOOK_FETCH, "reduce", 0, 0, map=0, map_attempt=0, empty=True),
        ]
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3
        )
        assert any(v.invariant == "no-stale-serve" for v in found)

    def test_supersede_observed_detected(self):
        from repro.mapreduce.engine import TaskAttempt

        events = [
            ev(0, HOOK_SPILL_COMMIT, "map", 0, 0, partitions=(0,)),
            ev(1, HOOK_SPILL_COMMIT, "map", 1, 0, partitions=(0,)),
            ev(2, HOOK_CLAIM, "reduce", 0, 1),
            ev(3, HOOK_FETCH, "reduce", 0, 0, map=0, map_attempt=0, empty=False),
            # map 0 is re-spilled (attempt 1) before the fetch phase ends
            ev(4, HOOK_SPILL_COMMIT, "map", 0, 1, partitions=(0,),
               superseded=True),
            ev(5, HOOK_FETCH, "reduce", 0, 0, map=1, map_attempt=0, empty=False),
        ]
        attempts = (
            TaskAttempt(kind="reduce", index=0, attempt=1, outcome="ok"),
        )
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3, attempts=attempts
        )
        assert any(v.invariant == "supersede-observed" for v in found)
        # …but if the attempt never committed, the freshness guard did
        # its job and there is no violation.
        found = check_interleaving_invariants(
            events, barrier=self.BARRIER, total_maps=3, attempts=()
        )
        assert not any(v.invariant == "supersede-observed" for v in found)

    def test_unknown_partition_raises_config_error(self):
        events = [
            ev(0, HOOK_FETCH, "reduce", 9, 0, map=0, map_attempt=0, empty=False),
        ]
        with pytest.raises(JobConfigError):
            check_interleaving_invariants(
                events, barrier=self.BARRIER, total_maps=3
            )


class TestTraceDeterminism:
    """Satellite (c): EngineTrace with an injected LogicalClock is
    bit-stable across repeated serial replays."""

    def run_once(self):
        job, barrier = crafted_job()
        trace = EngineTrace(clock=LogicalClock())
        obs = JobObservability(job.name, enabled=False, legacy_trace=trace)
        res = LocalEngine(observability=False).run_serial(job, barrier, obs=obs)
        return dict(res.all_records()), [
            (e.seq, e.wall, e.kind, e.event, e.index)
            for e in res.trace.events
        ]

    def test_repeated_runs_identical(self):
        out1, trace1 = self.run_once()
        out2, trace2 = self.run_once()
        assert out1 == EXPECTED
        assert out1 == out2
        assert trace1, "trace recorded no events"
        assert trace1 == trace2

    def test_logical_clock_monotonic_and_threadsafe(self):
        clk = LogicalClock(step=0.5)
        vals = [clk() for _ in range(5)]
        assert vals == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_chaos_hook_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ChaosHook(max_delay=-1.0)
        with pytest.raises(ValueError):
            ChaosHook(density=0.0)
