"""Unit tests for the columnar data plane building blocks.

The end-to-end oracle comparison lives in
:mod:`tests.test_columnar_equivalence`; this module pins down the
pieces: the batch record reader, the batch operator adapters, the
columnar map-output file, and the engine/store plumbing around them.
"""

import numpy as np
import pytest

from repro.errors import JobConfigError, ShuffleError
from repro.mapreduce.columnar import (
    ChunkBatch,
    ColumnarMapOutput,
    group_starts,
    lexsorted_rows,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import ThresholdFilterMapper
from repro.mapreduce.shuffle import ShuffleStore, _nbytes, _spill_checks_enabled
from repro.mapreduce.types import MapTaskId
from repro.query.columnar import (
    ColumnarRecordReader,
    batch_operator_for,
    make_columnar_reader_factory,
)
from repro.query.language import StructuralQuery
from repro.query.operators import (
    Chunk,
    CountOp,
    MaxOp,
    MeanOp,
    MedianOp,
    MinOp,
    Partial,
    RangeExceedsOp,
    RangeOp,
    SortOp,
    StdDevOp,
    SumOp,
    ThresholdFilterOp,
)
from repro.query.recordreader import make_reader_factory
from repro.query.splits import slice_splits
from repro.scidata.generators import temperature_dataset

DISTRIBUTIVE = [
    SumOp(), CountOp(), MeanOp(), MinOp(), MaxOp(), StdDevOp(),
    RangeOp(), RangeExceedsOp(threshold=2.0),
]
# No batch adapter: holistic operators (reduce-side state is the full
# value multiset).  filter_gt now has the dedicated predicate-pushdown
# adapter (object-dtype survivors column) — see TestFilterBatchOperator.
NO_ADAPTER = [MedianOp(), SortOp()]


@pytest.fixture(scope="module")
def field():
    return temperature_dataset(days=29, lat=10, lon=6, seed=7)


@pytest.fixture(scope="module")
def data(field):
    return field.arrays["temperature"].astype(np.float32)


def _plan(field, shape, **kw):
    q = StructuralQuery(
        variable="temperature", extraction_shape=shape,
        operator=kw.pop("operator", MeanOp()), **kw,
    )
    return q.compile(field.metadata)


def _expand(reader):
    """Flatten a columnar reader's stream to per-instance records."""
    out = {}
    fallbacks = batches = 0
    for item in reader:
        if isinstance(item, ChunkBatch):
            batches += 1
            for i in range(item.num_instances):
                key = tuple(int(k) for k in item.keys[i])
                out.setdefault(key, []).append(item.values[i])
        else:
            fallbacks += 1
            key, chunk = item
            out.setdefault(key, []).append(
                np.asarray(chunk.data).reshape(-1)
            )
    return out, batches, fallbacks


def _oracle(source, plan, split):
    out = {}
    for key, chunk in make_reader_factory(source, plan)(split):
        out.setdefault(key, []).append(np.asarray(chunk.data).reshape(-1))
    return out


def _assert_same_stream(columnar, oracle):
    assert set(columnar) == set(oracle)
    for key in oracle:
        got = np.sort(np.concatenate(columnar[key]))
        want = np.sort(np.concatenate(oracle[key]))
        np.testing.assert_array_equal(got, want)


# --------------------------------------------------------------------- #
# ColumnarRecordReader vs StructuralRecordReader
# --------------------------------------------------------------------- #
class TestColumnarReader:
    @pytest.mark.parametrize("splits", [1, 4, 7])
    def test_dense_same_records_no_fallback(self, field, data, splits):
        plan = _plan(field, (7, 5, 2))
        for split in slice_splits(plan, num_splits=splits):
            cols, batches, fallbacks = _expand(
                ColumnarRecordReader(data, plan, split)
            )
            assert fallbacks == 0
            _assert_same_stream(cols, _oracle(data, plan, split))

    def test_strided_falls_back_only_on_edges(self, field, data):
        plan = _plan(field, (2, 2, 2), stride=(3, 4, 3))
        total_fallbacks = 0
        for split in slice_splits(plan, num_splits=4):
            cols, batches, fallbacks = _expand(
                ColumnarRecordReader(data, plan, split)
            )
            total_fallbacks += fallbacks
            _assert_same_stream(cols, _oracle(data, plan, split))
        # The stride gaps split instances across slab boundaries: some
        # keys must take the per-instance path, but not all of them.
        assert total_fallbacks > 0

    def test_keep_partial_instances(self, field, data):
        plan = _plan(field, (7, 4, 4), keep_partial_instances=True)
        for split in slice_splits(plan, num_splits=3):
            cols, _, _ = _expand(ColumnarRecordReader(data, plan, split))
            _assert_same_stream(cols, _oracle(data, plan, split))

    def test_subset(self, field, data):
        from repro.arrays.slab import Slab

        plan = _plan(field, (7, 5, 2),
                     subset=Slab((2, 1, 1), (26, 9, 5)))
        for split in slice_splits(plan, num_splits=3):
            cols, _, _ = _expand(ColumnarRecordReader(data, plan, split))
            _assert_same_stream(cols, _oracle(data, plan, split))

    def test_batch_rows_match_instance_flatten(self, field, data):
        """Row i of a batch is exactly instance i's C-order flatten."""
        plan = _plan(field, (7, 5, 2))
        (split,) = slice_splits(plan, num_splits=1)
        for item in ColumnarRecordReader(data, plan, split):
            assert isinstance(item, ChunkBatch)
            for i in range(item.num_instances):
                key = tuple(int(k) for k in item.keys[i])
                region = plan.instance_region(key)
                want = data[region.as_slices()].reshape(-1)
                np.testing.assert_array_equal(item.values[i], want)

    def test_factory_shape(self, field, data):
        plan = _plan(field, (7, 5, 2))
        factory = make_columnar_reader_factory(data, plan)
        (split,) = slice_splits(plan, num_splits=1)
        items = list(factory(split))
        assert items and all(isinstance(b, ChunkBatch) for b in items)


# --------------------------------------------------------------------- #
# Batch operator adapters
# --------------------------------------------------------------------- #
class TestBatchOperators:
    @pytest.mark.parametrize("op", DISTRIBUTIVE, ids=lambda o: o.name)
    def test_adapter_exists(self, op):
        assert batch_operator_for(op) is not None

    @pytest.mark.parametrize("op", NO_ADAPTER, ids=lambda o: o.name)
    def test_holistic_has_no_adapter(self, op):
        assert batch_operator_for(op) is None

    @pytest.mark.parametrize("op", DISTRIBUTIVE, ids=lambda o: o.name)
    def test_map_batch_matches_map_partial(self, op):
        rng = np.random.default_rng(5)
        values = rng.normal(10.0, 4.0, (9, 14)).astype(np.float32)
        bop = batch_operator_for(op)
        cols = bop.map_batch(values)
        assert all(c.shape == (9,) for c in cols)
        for i in range(values.shape[0]):
            want = op.map_partial(Chunk(values[i], values.shape[1]))
            row = tuple(col[i] for col in cols)
            state = want.state if isinstance(want.state, tuple) else (want.state,)
            assert row == pytest.approx(state, rel=0, abs=0)

    @pytest.mark.parametrize("op", DISTRIBUTIVE, ids=lambda o: o.name)
    def test_combine_and_finalize_match_scalar_path(self, op):
        rng = np.random.default_rng(6)
        values = rng.normal(0.0, 2.0, (6, 8))
        bop = batch_operator_for(op)
        cols = bop.map_batch(values)
        counts = np.full(6, values.shape[1], dtype=np.int64)
        # Two groups: rows [0, 4) and [4, 6).
        starts = np.array([0, 4], dtype=np.int64)
        merged = bop.combine_columns(cols, starts)
        for g, (lo, hi) in enumerate([(0, 4), (4, 6)]):
            partials = []
            for i in range(lo, hi):
                state = tuple(col[i] for col in cols)
                partials.append(Partial(
                    state if len(state) > 1 else state[0],
                    int(counts[i]),
                ))
            want = op.finalize(op.combine(partials))
            row = tuple(col[g] for col in merged)
            got = bop.finalize_row(row, int(counts[lo:hi].sum()))
            assert got == want

    def test_map_record_matches_scalar(self):
        op = StdDevOp()
        bop = batch_operator_for(op)
        chunk = Chunk(np.arange(12.0, dtype=np.float32), 12)
        row, count = bop.map_record(chunk)
        want = op.map_partial(chunk)
        assert count == want.source_count
        assert row == pytest.approx(want.state, rel=0, abs=0)


# --------------------------------------------------------------------- #
# filter_gt predicate-pushdown adapter
# --------------------------------------------------------------------- #
class TestFilterBatchOperator:
    OP = ThresholdFilterOp(threshold=5.0)

    def test_adapter_exists(self):
        from repro.query.columnar import _FilterBatchOperator

        assert isinstance(batch_operator_for(self.OP), _FilterBatchOperator)

    def test_map_batch_matches_map_partial(self):
        rng = np.random.default_rng(5)
        values = rng.normal(5.0, 4.0, (9, 14)).astype(np.float32)
        bop = batch_operator_for(self.OP)
        (col,) = bop.map_batch(values)
        assert col.shape == (9,) and col.dtype == object
        for i in range(values.shape[0]):
            want = self.OP.map_partial(Chunk(values[i], values.shape[1]))
            np.testing.assert_array_equal(
                np.asarray(col[i]), np.asarray(want.state)
            )

    def test_empty_after_mask_row_keeps_its_place(self):
        """An all-masked instance still occupies a row (empty survivors,
        full source count) — the §3.2.1 tally must see its cells."""
        values = np.array([[1.0, 2.0], [9.0, 1.0], [0.0, 0.0]])
        bop = batch_operator_for(self.OP)
        (col,) = bop.map_batch(values)
        assert col.shape == (3,)
        assert np.asarray(col[0]).size == 0
        np.testing.assert_array_equal(np.asarray(col[1]), [9.0])
        assert np.asarray(col[2]).size == 0

    def test_combine_and_finalize_match_scalar_path(self):
        rng = np.random.default_rng(6)
        values = rng.normal(5.0, 3.0, (6, 8))
        bop = batch_operator_for(self.OP)
        cols = bop.map_batch(values)
        counts = np.full(6, values.shape[1], dtype=np.int64)
        starts = np.array([0, 4], dtype=np.int64)
        merged = bop.combine_columns(cols, starts)
        for g, (lo, hi) in enumerate([(0, 4), (4, 6)]):
            partials = [
                Partial(np.asarray(cols[0][i]), int(counts[i]))
                for i in range(lo, hi)
            ]
            want = self.OP.finalize(self.OP.combine(partials))
            got = bop.finalize_row(
                tuple(c[g] for c in merged), int(counts[lo:hi].sum())
            )
            assert got == want

    def test_masked_cells_accounting(self):
        values = np.array([[1.0, 9.0], [0.0, 2.0], [7.0, 8.0]])
        bop = batch_operator_for(self.OP)
        cols = bop.map_batch(values)
        # 6 cells total, 3 survive (9, 7, 8) -> 3 masked.
        assert bop.masked_cells(values, cols) == 3

    def test_fallback_cell_wraps_arrays_into_object_column(self):
        """A fallback record's array-valued state must concatenate with
        the batch path's object columns (regression: np.asarray([arr])
        built a (1, k) numeric block instead)."""
        from repro.mapreduce.columnar import _fallback_cell

        bop = batch_operator_for(self.OP)
        row, count = bop.map_record(Chunk(np.array([1.0, 9.0, 8.0]), 3))
        assert count == 3
        cell = _fallback_cell(row[0])
        assert cell.shape == (1,) and cell.dtype == object
        np.testing.assert_array_equal(cell[0], [9.0, 8.0])
        (batch_col,) = bop.map_batch(np.array([[6.0, 2.0]]))
        joined = np.concatenate([batch_col, cell])
        assert joined.dtype == object and joined.shape == (2,)
        # Scalar components keep the direct numeric path.
        assert _fallback_cell(3.5).dtype != object


# --------------------------------------------------------------------- #
# ChunkBatch / helpers
# --------------------------------------------------------------------- #
class TestChunkBatch:
    def test_valid(self):
        b = ChunkBatch(np.zeros((3, 2), dtype=np.int64), np.ones((3, 5)))
        assert b.num_instances == 3
        assert b.cells_per_instance == 5

    def test_rejects_1d_keys(self):
        with pytest.raises(ShuffleError, match="keys"):
            ChunkBatch(np.zeros(3, dtype=np.int64), np.ones((3, 5)))

    def test_rejects_row_mismatch(self):
        with pytest.raises(ShuffleError, match="mismatch"):
            ChunkBatch(np.zeros((4, 2), dtype=np.int64), np.ones((3, 5)))


class TestHelpers:
    def test_lexsorted_rows(self):
        assert lexsorted_rows(np.empty((0, 2), dtype=np.int64))
        assert lexsorted_rows(np.array([[0, 5]]))
        assert lexsorted_rows(np.array([[0, 1], [0, 1], [0, 2], [1, 0]]))
        assert not lexsorted_rows(np.array([[0, 2], [0, 1]]))
        assert not lexsorted_rows(np.array([[1, 0], [0, 9]]))

    def test_group_starts(self):
        keys = np.array([[0, 0], [0, 0], [0, 1], [2, 0], [2, 0]])
        np.testing.assert_array_equal(group_starts(keys), [0, 2, 3])
        assert group_starts(np.empty((0, 3), dtype=np.int64)).size == 0


# --------------------------------------------------------------------- #
# ColumnarMapOutput
# --------------------------------------------------------------------- #
def _cmo(**kw):
    defaults = dict(
        map_id=MapTaskId(0),
        partition=1,
        keys=np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int64),
        states=(np.array([1.0, 2.0, 3.0]),),
        source_counts=np.array([4, 4, 4], dtype=np.int64),
        source_records=12,
    )
    defaults.update(kw)
    return ColumnarMapOutput(**defaults)


class TestColumnarMapOutput:
    def test_valid(self):
        f = _cmo()
        assert f.num_records == 3
        assert f.source_records == 12

    def test_unsorted_keys_rejected(self):
        # conftest pins REPRO_CHECK_SPILLS=1, so construction validates.
        with pytest.raises(ShuffleError, match="not sorted"):
            _cmo(keys=np.array([[1, 0], [0, 0], [0, 1]], dtype=np.int64))

    def test_state_column_length_mismatch(self):
        with pytest.raises(ShuffleError, match="length"):
            _cmo(states=(np.array([1.0, 2.0]),))

    def test_counts_shape_mismatch(self):
        with pytest.raises(ShuffleError):
            _cmo(source_counts=np.array([4, 4], dtype=np.int64))

    def test_approx_bytes_is_buffer_sum(self):
        f = _cmo()
        want = (f.keys.nbytes + f.states[0].nbytes
                + f.source_counts.nbytes)
        assert f.approx_serialized_bytes == want

    def test_shuffle_store_duck_compat(self):
        """spill / fetch / supersede / consume work unchanged on
        columnar files — the store never looks inside ``records``."""
        store = ShuffleStore(persist=False)
        store.spill([_cmo()], attempt=0)
        assert store.attempt_of(0) == 0
        # Superseding retry replaces the attempt atomically.
        store.spill([_cmo(source_records=13)], attempt=1)
        assert store.attempt_of(0) == 1
        fetched = store.fetch(0, 1)
        assert isinstance(fetched, ColumnarMapOutput)
        assert fetched.source_records == 13
        # persist=False: the fetch consumed it.
        assert store.missing_inputs(1, frozenset({0})) == frozenset({0})

    def test_stale_attempt_rejected(self):
        store = ShuffleStore()
        store.spill([_cmo()], attempt=1)
        with pytest.raises(ShuffleError, match="already spilled"):
            store.spill([_cmo()], attempt=1)


# --------------------------------------------------------------------- #
# Plumbing: JobConf, planner fallback, sizing, spill-check gate
# --------------------------------------------------------------------- #
class TestPlumbing:
    def test_jobconf_rejects_unknown_plane(self, field, data):
        plan = _plan(field, (7, 5, 2))
        sp = slice_splits(plan, num_splits=2)
        with pytest.raises(JobConfigError, match="data plane"):
            JobConf(
                name="bad",
                splits=list(sp),
                reader_factory=make_reader_factory(data, plan),
                mapper_factory=lambda: None,
                reducer_factory=lambda: None,
                partitioner=None,
                num_reduce_tasks=2,
                data_plane="chunky",
            )

    def test_planner_rejects_unknown_plane(self, field, data):
        from repro.sidr.planner import build_sidr_job

        plan = _plan(field, (7, 5, 2))
        sp = slice_splits(plan, num_splits=2)
        with pytest.raises(JobConfigError, match="data plane"):
            build_sidr_job(plan, sp, 2, data, data_plane="chunky")

    def test_planner_falls_back_for_holistic(self, field, data):
        from repro.sidr.planner import build_sidr_job

        plan = _plan(field, (7, 5, 2), operator=MedianOp())
        sp = slice_splits(plan, num_splits=2)
        job, _, _ = build_sidr_job(plan, sp, 2, data, data_plane="columnar")
        assert job.data_plane == "record"
        assert job.context["data_plane_requested"] == "columnar"
        assert "batch_operator" not in job.context

    def test_nbytes_ndarray_is_exact(self):
        arr = np.zeros(100, dtype=np.float64)
        assert _nbytes(arr) == arr.nbytes
        obj = np.empty(2, dtype=object)
        obj[0] = np.zeros(10, dtype=np.float32)
        obj[1] = np.zeros(10, dtype=np.float32)
        assert _nbytes(obj) == 80

    def test_threshold_mapper_keeps_ndarray(self):
        m = ThresholdFilterMapper(threshold=2.0)
        chunk = Chunk(np.array([1.0, 3.0, 5.0]), 3)
        ((key, payload),) = list(m.map((0, 0), chunk))
        assert isinstance(payload["values"], np.ndarray)
        np.testing.assert_array_equal(payload["values"], [3.0, 5.0])
        assert payload["source_count"] == 3
        assert _nbytes(payload["values"]) == payload["values"].nbytes

    def test_spill_check_env_parsing(self, monkeypatch):
        for raw, want in [
            ("1", True), ("true", True), ("yes", True), ("on", True),
            ("0", False), ("false", False), ("no", False),
            ("off", False), ("", False),
        ]:
            monkeypatch.setenv("REPRO_CHECK_SPILLS", raw)
            assert _spill_checks_enabled() is want
        monkeypatch.delenv("REPRO_CHECK_SPILLS")
        assert _spill_checks_enabled() is __debug__
