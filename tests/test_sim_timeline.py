"""Unit tests for TaskTimeline metrics and curves."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.timeline import TaskTimeline


def timeline(map_finish, reduce_finish, weights=None):
    n_m, n_r = len(map_finish), len(reduce_finish)
    tl = TaskTimeline(
        mode="test",
        num_maps=n_m,
        num_reduces=n_r,
        map_start=[0.0] * n_m,
        map_finish=list(map_finish),
        reduce_scheduled=[0.0] * n_r,
        reduce_processing_start=[min(reduce_finish)] * n_r
        if reduce_finish
        else [],
        reduce_finish=list(reduce_finish),
        reduce_weights=list(weights) if weights else [1.0 / n_r] * n_r,
    )
    # Fix processing_start to be <= each finish for validation.
    tl.reduce_processing_start = [f for f in reduce_finish]
    return tl


class TestMetrics:
    def test_makespan_and_first(self):
        tl = timeline([10.0, 20.0], [25.0, 40.0])
        assert tl.makespan == 40.0
        assert tl.last_map_finish == 20.0
        assert tl.first_result_time == 25.0

    def test_early_reduce_count(self):
        tl = timeline([10.0, 50.0], [30.0, 60.0])
        assert tl.reduces_finished_before_last_map() == 1

    def test_validate_rejects_inverted_phases(self):
        tl = timeline([10.0], [20.0])
        tl.reduce_processing_start = [25.0]  # after finish
        with pytest.raises(SimulationError):
            tl.validate()

    def test_validate_rejects_missing_tasks(self):
        tl = timeline([10.0], [20.0])
        tl.map_finish = []
        with pytest.raises(SimulationError):
            tl.validate()


class TestCurves:
    def test_map_curve(self):
        tl = timeline([30.0, 10.0, 20.0], [40.0])
        c = tl.map_completion_curve()
        assert c.times == (10.0, 20.0, 30.0)
        assert c.fractions[-1] == pytest.approx(1.0)

    def test_reduce_curve_weighted(self):
        tl = timeline([1.0], [10.0, 20.0], weights=[0.75, 0.25])
        c = tl.reduce_completion_curve()
        assert c.fraction_at(10.0) == pytest.approx(0.75)
        assert c.fraction_at(20.0) == pytest.approx(1.0)

    def test_reduce_curve_unweighted_default(self):
        tl = timeline([1.0], [10.0, 20.0, 30.0, 40.0])
        c = tl.reduce_completion_curve()
        assert c.fraction_at(20.0) == pytest.approx(0.5)

    def test_sampled_curve_bounds(self):
        tl = timeline([1.0], [10.0, 20.0])
        vals = tl.sampled_reduce_curve(np.array([0.0, 15.0, 99.0]))
        assert vals[0] == 0.0
        assert vals[1] == pytest.approx(0.5)
        assert vals[2] == pytest.approx(1.0)

    def test_fraction_done_at(self):
        tl = timeline([1.0], [10.0, 20.0])
        assert tl.fraction_done_at(5.0) == 0.0
        assert tl.fraction_done_at(10.0) == pytest.approx(0.5)

    def test_summary_keys(self):
        tl = timeline([5.0], [10.0])
        s = tl.summary()
        assert set(s) == {
            "makespan",
            "last_map_finish",
            "first_result",
            "early_reduces",
            "connections",
        }


def map_only_timeline(map_finish):
    n_m = len(map_finish)
    return TaskTimeline(
        mode="test",
        num_maps=n_m,
        num_reduces=0,
        map_start=[0.0] * n_m,
        map_finish=list(map_finish),
    )


class TestZeroReduces:
    """Regression: map-only timelines used to crash with an IndexError
    in ``reduce_completion_curve`` (``fr[-1]`` on an empty cumsum)."""

    def test_empty_reduce_curve(self):
        c = map_only_timeline([10.0, 20.0]).reduce_completion_curve()
        assert c.times == ()
        assert c.fractions == ()

    def test_fraction_done_at_zero_reduces(self):
        assert map_only_timeline([10.0]).fraction_done_at(99.0) == 0.0

    def test_sampled_curve_zero_reduces(self):
        vals = map_only_timeline([10.0]).sampled_reduce_curve(
            np.array([0.0, 5.0, 50.0])
        )
        assert list(vals) == [0.0, 0.0, 0.0]

    def test_summary_zero_reduces(self):
        s = map_only_timeline([10.0]).summary()
        assert s["first_result"] == float("inf")
        assert s["early_reduces"] == 0.0
        assert s["makespan"] == 10.0


class TestObservabilityBridge:
    def test_replay_matches_timeline(self):
        tl = TaskTimeline(
            mode="test",
            num_maps=2,
            num_reduces=1,
            map_start=[0.0, 1.0],
            map_finish=[4.0, 6.0],
            reduce_scheduled=[0.5],
            reduce_processing_start=[5.0],
            reduce_finish=[9.0],
            reduce_barrier_ready=[4.0],
            reduce_weights=[1.0],
            shuffle_connections=2,
        )
        obs = tl.to_observability("replay")
        tr = obs.tracer
        job = tr.find("job")[0]
        assert job.start == 0.0 and job.end == 9.0
        maps = sorted(tr.find("map"), key=lambda s: s.args["index"])
        assert [(s.start, s.end) for s in maps] == [(0.0, 4.0), (1.0, 6.0)]
        wait = tr.find("barrier.wait")[0]
        assert (wait.start, wait.end) == (0.5, 4.0)
        reduce = tr.find("reduce")[0]
        assert (reduce.start, reduce.end) == (4.0, 9.0)
        fetch = tr.find("reduce.fetch")[0]
        assert (fetch.start, fetch.end) == (4.0, 5.0)
        red = tr.find("reduce.reduce")[0]
        assert (red.start, red.end) == (5.0, 9.0)
        # Barrier satisfied at t=4 < last map finish at t=6: early start.
        assert len(tr.find("reduce.early_start")) == 1
        snap = obs.metrics.snapshot()
        assert snap["counters"]["barrier.early.starts"] == 1
        assert snap["counters"]["shuffle.fetch.connections"] == 2
        assert snap["gauges"]["job.makespan.seconds"] == 9.0

    def test_replay_without_barrier_ready_falls_back(self):
        """Old timelines (no ``reduce_barrier_ready``) still replay, using
        the processing start as the barrier-satisfaction time."""
        tl = timeline([5.0], [10.0])
        obs = tl.to_observability()
        wait = obs.tracer.find("barrier.wait")[0]
        assert wait.end == 10.0  # processing_start fallback
        assert obs.job_name == "sim-test"
