"""Oracle equivalence suite for the columnar data plane (perf PR).

The record plane is the oracle: for every supported operator, every
reader geometry, and both engines, the columnar plane must produce
**byte-identical** output — not approximately equal.  The cell-level
reference reader is also compared where its accumulation order is
exactly the chunked path's (see the sum note below).

Set ``REPRO_ENGINE_MODE=serial``, ``=threaded``, or ``=process`` to
restrict the
engine matrix, as in :mod:`tests.test_fault_tolerance`.
"""

import os

import numpy as np
import pytest

from repro.faults import (
    WHEN_AFTER_FETCH,
    FaultKind,
    FaultRule,
    InjectionPlan,
    RecoveryModel,
)
from repro.mapreduce.engine import LocalEngine, RetryPolicy
from repro.query.language import StructuralQuery
from repro.query.operators import (
    CountOp,
    MaxOp,
    MeanOp,
    MedianOp,
    MinOp,
    RangeExceedsOp,
    RangeOp,
    StdDevOp,
    SumOp,
)
from repro.query.recordreader import CellToChunkMapper, make_reader_factory
from repro.query.splits import slice_splits
from repro.scidata.generators import temperature_dataset, windspeed_dataset
from repro.sidr.planner import build_sidr_job

#: ``process`` is opt-in (env), not in the default matrix: forking
#: a pool per test would triple suite wall-clock for bodies the
#: fuzz matrix already covers cross-process.
_ALL_MODES = ("serial", "threaded")
_KNOWN = ("serial", "threaded", "process")
_env = os.environ.get("REPRO_ENGINE_MODE", "")
MODES = (_env,) if _env in _KNOWN else _ALL_MODES

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)

OPERATORS = [
    SumOp(),
    CountOp(),
    MeanOp(),
    MinOp(),
    MaxOp(),
    StdDevOp(),
    RangeOp(),
    RangeExceedsOp(threshold=5.0),
    MedianOp(),  # holistic: request falls back to the record plane
]

#: Operators whose chunked-path accumulation is order/dtype-insensitive,
#: so the per-cell reference reader is byte-identical too.  SumOp is the
#: exception: its map_partial reduces the chunk in the *source* dtype
#: (e.g. float32) before widening, while the cell path feeds one
#: float64 chunk per cell — mathematically equal, not bit-equal.
CELL_EXACT = ("count", "min", "max", "median")


def run(engine, mode, job, barrier, **kw):
    if mode == "serial":
        return engine.run_serial(job, barrier, **kw)
    if mode == "process":
        return engine.run_processes(job, barrier, **kw)
    return engine.run_threaded(job, barrier, **kw)


def _plan(field, extraction_shape, op, **query_kw):
    q = StructuralQuery(
        variable=next(iter(field.arrays)),
        extraction_shape=extraction_shape,
        operator=op,
        **query_kw,
    )
    return q.compile(field.metadata)


def _records(plan, data, op, *, data_plane, num_splits=4, reduces=3,
             mode="serial", cell_level=False):
    sp = slice_splits(plan, num_splits=num_splits)
    job, barrier, _ = build_sidr_job(plan, sp, reduces, data,
                                     data_plane=data_plane)
    if cell_level:
        assert data_plane == "record"
        job.reader_factory = make_reader_factory(data, plan, cell_level=True)
        job.mapper_factory = lambda: CellToChunkMapper(plan)
    engine = LocalEngine(map_workers=4, reduce_workers=3)
    return run(engine, mode, job, barrier), job


@pytest.fixture(scope="module")
def temp32():
    """float32 source — the dtype where accumulation-order bugs show."""
    field = temperature_dataset(days=29, lat=10, lon=6, seed=11)
    return field, field.arrays["temperature"].astype(np.float32)


@pytest.fixture(scope="module")
def wind():
    field = windspeed_dataset(time=12, lat=12, lon=6, elevation=10, seed=3)
    return field, field.arrays["windspeed"]


# --------------------------------------------------------------------- #
# Every operator, byte-identical, both engines
# --------------------------------------------------------------------- #
class TestOperatorIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_columnar_matches_record(self, temp32, op, mode):
        field, data = temp32
        plan = _plan(field, (7, 5, 2), op)
        oracle, _ = _records(plan, data, op, data_plane="record", mode=mode)
        res, job = _records(plan, data, op, data_plane="columnar", mode=mode)
        assert res.all_records() == oracle.all_records()
        if op.distributive:
            assert job.data_plane == "columnar"
            assert res.counters.get("plane.batched.instances") > 0
        else:
            # Holistic operators fall back; request stays recorded.
            assert job.data_plane == "record"
            assert job.context["data_plane_requested"] == "columnar"

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_cell_reference_reader(self, temp32, op):
        """The per-cell reference path agrees with both chunked planes
        (bit-exact where its accumulation order matches, see CELL_EXACT)."""
        field, data = temp32
        plan = _plan(field, (7, 5, 2), op)
        oracle, _ = _records(plan, data, op, data_plane="record")
        cell, _ = _records(plan, data, op, data_plane="record",
                           cell_level=True)
        a, b = oracle.all_records(), cell.all_records()
        if op.name in CELL_EXACT:
            assert a == b
        else:
            assert [k for k, _ in a] == [k for k, _ in b]
            for (_, va), (_, vb) in zip(a, b):
                assert va == pytest.approx(vb, rel=1e-6)


# --------------------------------------------------------------------- #
# Geometry edge cases
# --------------------------------------------------------------------- #
class TestGeometryIdentity:
    @pytest.mark.parametrize("splits", [1, 4, 7])
    def test_unaligned_splits(self, temp32, splits):
        field, data = temp32
        plan = _plan(field, (7, 5, 2), MeanOp())
        oracle, _ = _records(plan, data, MeanOp(), data_plane="record",
                             num_splits=splits)
        res, _ = _records(plan, data, MeanOp(), data_plane="columnar",
                          num_splits=splits)
        assert res.all_records() == oracle.all_records()

    @pytest.mark.parametrize("stride", [(3, 2, 2), (5, 4, 3)])
    def test_strided_extraction(self, temp32, stride):
        field, data = temp32
        plan = _plan(field, (2, 2, 2), SumOp(), stride=stride)
        oracle, _ = _records(plan, data, SumOp(), data_plane="record")
        res, _ = _records(plan, data, SumOp(), data_plane="columnar")
        assert res.all_records() == oracle.all_records()
        # Stride gaps force the per-instance fallback for edge keys.
        assert res.counters.get("plane.batched.instances") > 0

    def test_truncate_false_ragged_edges(self, temp32):
        field, data = temp32
        plan = _plan(field, (7, 4, 4), StdDevOp(), keep_partial_instances=True)
        oracle, _ = _records(plan, data, StdDevOp(), data_plane="record")
        res, _ = _records(plan, data, StdDevOp(), data_plane="columnar")
        assert res.all_records() == oracle.all_records()

    def test_strided_keep_partial(self, temp32):
        field, data = temp32
        plan = _plan(field, (3, 3, 2), MaxOp(), stride=(4, 4, 3),
                     keep_partial_instances=True)
        oracle, _ = _records(plan, data, MaxOp(), data_plane="record")
        res, _ = _records(plan, data, MaxOp(), data_plane="columnar")
        assert res.all_records() == oracle.all_records()

    def test_many_partials_per_key(self, temp32):
        """Instances spanning all 7 splits give 7 partials per key —
        the regime where pairwise vs sequential summation diverges, so
        this pins the segmented combine to the scalar fold order."""
        field, data = temp32
        plan = _plan(field, (29, 5, 2), SumOp())
        oracle, _ = _records(plan, data, SumOp(), data_plane="record",
                             num_splits=7)
        res, _ = _records(plan, data, SumOp(), data_plane="columnar",
                          num_splits=7)
        assert res.all_records() == oracle.all_records()

    def test_4d_wind(self, wind):
        field, data = wind
        plan = _plan(field, (2, 6, 3, 5), MeanOp())
        oracle, _ = _records(plan, data, MeanOp(), data_plane="record")
        res, _ = _records(plan, data, MeanOp(), data_plane="columnar")
        assert res.all_records() == oracle.all_records()

    def test_reference_output_agrees(self, temp32):
        """Both planes match the QueryPlan's direct numpy oracle."""
        field, data = temp32
        plan = _plan(field, (7, 5, 2), MeanOp())
        ref = plan.reference_output(data)
        res, _ = _records(plan, data, MeanOp(), data_plane="columnar")
        for key, value in res.all_records():
            assert value == pytest.approx(ref[key], rel=1e-12)


# --------------------------------------------------------------------- #
# Fault tolerance on the columnar plane
# --------------------------------------------------------------------- #
class TestColumnarFaultTolerance:
    @pytest.mark.parametrize("mode", MODES)
    def test_map_retry_supersedes_corrupt_columnar_spill(self, temp32, mode):
        """A corrupted columnar spill must fail the attempt and the retry
        must supersede it, leaving clean-record-plane output."""
        field, data = temp32
        plan = _plan(field, (7, 5, 2), MeanOp())
        oracle, _ = _records(plan, data, MeanOp(), data_plane="record")
        sp = slice_splits(plan, num_splits=4)
        job, barrier, _ = build_sidr_job(plan, sp, 3, data,
                                         data_plane="columnar")
        faults = InjectionPlan(rules=(
            FaultRule(task="map", kind=FaultKind.CORRUPT_SPILL,
                      indices=frozenset({1}), times=1),
        ))
        engine = LocalEngine(map_workers=4, reduce_workers=3,
                             retry=FAST_RETRY, faults=faults)
        res = run(engine, mode, job, barrier)
        assert res.all_records() == oracle.all_records()

    @pytest.mark.parametrize("mode", MODES)
    def test_reduce_transient_after_fetch(self, temp32, mode):
        """Transient reduce failure after fetch under REEXECUTE_DEPS:
        consumed columnar outputs are regenerated, output unchanged."""
        field, data = temp32
        plan = _plan(field, (7, 5, 2), SumOp())
        oracle, _ = _records(plan, data, SumOp(), data_plane="record")
        sp = slice_splits(plan, num_splits=4)
        job, barrier, _ = build_sidr_job(plan, sp, 3, data,
                                         data_plane="columnar")
        faults = InjectionPlan(rules=(
            FaultRule(task="reduce", kind=FaultKind.TRANSIENT,
                      indices=frozenset({1}), times=1,
                      when=WHEN_AFTER_FETCH),
        ))
        engine = LocalEngine(
            map_workers=4, reduce_workers=3, retry=FAST_RETRY,
            faults=faults, recovery=RecoveryModel.REEXECUTE_DEPS,
        )
        res = run(engine, mode, job, barrier)
        assert res.all_records() == oracle.all_records()

    def test_threaded_equals_serial(self, temp32):
        field, data = temp32
        plan = _plan(field, (7, 5, 2), StdDevOp())
        a, _ = _records(plan, data, StdDevOp(), data_plane="columnar",
                        mode="serial")
        b, _ = _records(plan, data, StdDevOp(), data_plane="columnar",
                        mode="threaded")
        assert a.all_records() == b.all_records()
