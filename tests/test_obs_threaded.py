"""Observability under threaded execution (pools, races, merges).

Satellite coverage: spans keep correct parentage when tasks hop to pool
worker threads, concurrent metric updates merge losslessly, and the
``barrier.early.starts`` counter agrees with the legacy trace's
``reduce_starts_before_last_map`` under a DependencyBarrier.
"""

import threading

import pytest

from repro.mapreduce.engine import (
    DependencyBarrier,
    GlobalBarrier,
    LocalEngine,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import IdentityMapper
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.reducer import FunctionReducer
from repro.obs import MetricsRegistry
from tests.test_mapreduce_engine import counting_job, make_splits, ranged_job


class TestSpanNesting:
    def test_task_spans_parent_job_across_pools(self):
        """Explicit parent propagation: a task span created on a pool
        worker still nests under the job span."""
        job, deps = ranged_job(num_splits=12, num_reduces=4)
        eng = LocalEngine(map_workers=4, reduce_workers=3)
        res = eng.run_threaded(job, DependencyBarrier(deps))
        tracer = res.obs.tracer
        job_span = tracer.find("job")[0]
        tasks = [s for s in tracer.spans() if s.category == "task"]
        assert len(tasks) == 12 + 4
        assert all(s.parent_id == job_span.span_id for s in tasks)
        assert all(s.finished for s in tasks)

    def test_phase_spans_parent_their_task(self):
        job, deps = ranged_job(num_splits=8, num_reduces=4)
        res = LocalEngine().run_threaded(job, DependencyBarrier(deps))
        tracer = res.obs.tracer
        by_id = {s.span_id: s for s in tracer.spans()}
        phases = [s for s in tracer.spans() if s.category == "phase"]
        assert phases
        for p in phases:
            parent = by_id[p.parent_id]
            assert parent.category == "task"
            assert p.track == parent.track
            assert parent.start <= p.start and p.end <= parent.end

    def test_span_count_matches_serial(self):
        """Same job, same barrier: threaded and serial runs record the
        same span population (names x tracks), just different timings."""
        job, deps = ranged_job(num_splits=8, num_reduces=4)
        eng = LocalEngine()
        a = eng.run_serial(job, DependencyBarrier(deps))
        b = eng.run_threaded(job, DependencyBarrier(deps))

        def key(res):
            return sorted(
                (s.name, s.track)
                for s in res.obs.tracer.spans()
                if s.category != "instant"
            )

        assert key(a) == key(b)


class TestConcurrentMetrics:
    def test_engine_run_counts_are_exact(self):
        """Metric totals from a threaded run equal the serial run's —
        no update is lost to races."""
        job = counting_job(num_splits=8, num_reduces=4)
        eng = LocalEngine(map_workers=8, reduce_workers=4)
        serial = eng.run_serial(job, GlobalBarrier())
        threaded = eng.run_threaded(job, GlobalBarrier())
        s = serial.obs.metrics.snapshot()
        t = threaded.obs.metrics.snapshot()
        assert s["counters"]["map.emit.records"] == t["counters"]["map.emit.records"]
        assert (
            s["histograms"]["reduce.group.size"]["counts"]
            == t["histograms"]["reduce.group.size"]["counts"]
        )

    def test_cross_registry_merge_lossless(self):
        """Per-worker registries merged into one lose nothing."""
        n_workers, per_worker = 6, 500
        parts = [MetricsRegistry() for _ in range(n_workers)]

        def work(m):
            for i in range(per_worker):
                m.counter("events").inc()
                m.histogram("size", (10.0, 100.0)).observe(float(i % 150))

        threads = [
            threading.Thread(target=work, args=(m,)) for m in parts
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = MetricsRegistry()
        for m in parts:
            total.merge(m)
        assert total.counter("events").value == n_workers * per_worker
        h = total.histogram("size", (10.0, 100.0)).snapshot()
        assert h["count"] == n_workers * per_worker
        assert sum(h["counts"]) == h["count"]


class TestEarlyStartAgreement:
    def test_counter_matches_trace_deterministically(self):
        """Under a DependencyBarrier, ``barrier.early.starts`` must equal
        ``trace.reduce_starts_before_last_map()``.

        Threading makes the raw race nondeterministic, so the run is
        coordinated: the last map's reader blocks until reduce 0 has
        started (its start validator sets an event).  That pins exactly
        one early start on both sides of the comparison.
        """
        reduce0_started = threading.Event()

        def reader(split):
            if split.index == 3:
                assert reduce0_started.wait(timeout=30), "reduce 0 never ran"
            yield ((split.index,), split.index * 10)

        class Release:
            def validate(self, partition, tally):
                if partition == 0:
                    reduce0_started.set()

        deps = {
            0: frozenset({0, 1}),
            1: frozenset({2, 3}),
        }
        boundaries = [2, 4]
        job = JobConf(
            name="coord",
            splits=make_splits(4),
            reader_factory=reader,
            mapper_factory=IdentityMapper,
            reducer_factory=lambda: FunctionReducer(
                lambda k, vals: [(k, sum(vals))]
            ),
            partitioner=RangePartitioner((4,), boundaries),
            num_reduce_tasks=2,
            contact_all_maps=False,
        )
        job.context["reduce_start_validator"] = Release()
        # One map worker serializes maps 0..3; the reduce pool runs
        # reduce 0 while map 3 is blocked in its reader.
        eng = LocalEngine(map_workers=1, reduce_workers=2)
        res = eng.run_threaded(job, DependencyBarrier(deps))
        assert dict(res.all_records()) == {(i,): i * 10 for i in range(4)}
        early = res.counters.get("barrier.early.starts")
        assert early == 1
        assert res.trace.reduce_starts_before_last_map() == early
        assert res.obs.metrics.counter("barrier.early.starts").value == early
        instants = res.obs.tracer.find("reduce.early_start")
        assert [s.args["index"] for s in instants] == [0]

    @pytest.mark.parametrize("trial", range(3))
    def test_counter_never_exceeds_fired_reduces(self, trial):
        """Uncoordinated runs: the early-start counter is always between
        0 and the reduce count, and the metrics mirror agrees exactly."""
        job, deps = ranged_job(num_splits=12, num_reduces=4)
        res = LocalEngine(map_workers=4, reduce_workers=4).run_threaded(
            job, DependencyBarrier(deps)
        )
        early = res.counters.get("barrier.early.starts")
        assert 0 <= early <= 4
        assert res.obs.metrics.counter("barrier.early.starts").value == early
        assert len(res.obs.tracer.find("reduce.early_start")) == early


class TestIdenticalResults:
    def test_observability_off_gives_same_output(self):
        """Acceptance: identical results with observability on and off."""
        job, deps = ranged_job(num_splits=12, num_reduces=4)
        on = LocalEngine(observability=True)
        off = LocalEngine(observability=False)
        for runner in ("run_serial", "run_threaded"):
            a = getattr(on, runner)(job, DependencyBarrier(deps))
            b = getattr(off, runner)(job, DependencyBarrier(deps))
            assert a.all_records() == b.all_records()
            assert a.counters.as_dict() == b.counters.as_dict()

    def test_disabled_mode_records_no_spans_but_keeps_trace(self):
        job, deps = ranged_job()
        res = LocalEngine(observability=False).run_serial(
            job, DependencyBarrier(deps)
        )
        assert len(res.obs.tracer) == 0
        assert res.obs.metrics.snapshot()["counters"] == {}
        # The legacy trace bridge still works for old consumers.
        assert res.trace.reduce_starts_before_last_map() == 3
        assert res.counters.get("barrier.early.starts") == 3
