"""Property-based soundness tests for zone-map split skipping.

Pruning a split is a *proof obligation*: the planner asserts that no
cell inside the split's covered region satisfies the predicate and that
the region's contribution is therefore a combine identity.  These tests
check the proof against brute force for randomly drawn geometry, data,
thresholds and tile shapes — plus the serialization round trip, the
degrade-to-no-pruning paths (stale/mismatched zone maps), the keep-one
guard, and end-to-end byte-identity of pruned vs unpruned runs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.mapreduce.engine import LocalEngine
from repro.query.language import StructuralQuery
from repro.query.operators import ThresholdFilterOp
from repro.query.pruning import prune_splits, split_prunable
from repro.query.splits import slice_splits
from repro.scidata.metadata import (
    DatasetMetadata,
    Dimension,
    Variable,
    simple_metadata,
)
from repro.scidata.zonemaps import (
    ZoneMap,
    build_zone_map,
    constant_zone_map,
    default_tile_shape,
)
from repro.sidr.partition_plus import partition_plus
from repro.sidr.planner import build_sidr_job, derive_zone_map

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _meta(shape):
    dims = tuple(Dimension(f"d{i}", n) for i, n in enumerate(shape))
    return DatasetMetadata(
        dimensions=dims,
        variables=(Variable("v", "double", tuple(d.name for d in dims)),),
    )


@st.composite
def prune_case(draw):
    rank = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 9)) for _ in range(rank))
    extraction = tuple(draw(st.integers(1, s)) for s in shape)
    stride = None
    if draw(st.booleans()):
        stride = tuple(e + draw(st.integers(0, 2)) for e in extraction)
    tile = None
    if draw(st.booleans()):
        tile = tuple(draw(st.integers(1, s)) for s in shape)
    threshold = float(draw(st.integers(-12, 12)))
    num_splits = draw(st.integers(1, 6))
    reduces = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 100_000))
    return shape, extraction, stride, tile, threshold, num_splits, reduces, seed


def _build(case):
    shape, extraction, stride, tile, threshold, num_splits, reduces, seed = case
    rng = np.random.default_rng(seed)
    data = rng.integers(-15, 15, size=shape, endpoint=True).astype(np.float64)
    plan = StructuralQuery(
        variable="v",
        extraction_shape=extraction,
        operator=ThresholdFilterOp(threshold=threshold),
        stride=stride,
    ).compile(_meta(shape))
    splits = slice_splits(plan, num_splits=num_splits)
    zone_map = build_zone_map("v", data, tile_shape=tile)
    return plan, data, splits, zone_map, reduces


class TestPruningSoundness:
    @given(case=prune_case())
    @settings(max_examples=120, **SETTINGS)
    def test_pruned_split_contains_no_matching_cell(self, case):
        """The core soundness property: a prunable verdict is a proof
        that no covered cell in the split exceeds the threshold."""
        plan, data, splits, zone_map, _ = _build(case)
        predicate = plan.operator.prune_predicate()
        threshold = plan.operator.threshold
        for sp in splits:
            if not split_prunable(plan, sp, zone_map, predicate):
                continue
            for slab in sp.slabs:
                work = slab.intersect(plan.covered)
                if work.is_empty:
                    continue
                region = data[work.as_slices()]
                assert not np.any(region > threshold), (
                    f"pruned split {sp.index} contains matching cells "
                    f"(threshold {threshold}, max {region.max()})"
                )

    @given(case=prune_case())
    @settings(max_examples=60, **SETTINGS)
    def test_pruned_run_is_byte_identical_to_unpruned(self, case):
        """End to end: pruning must be invisible in the output — same
        keys, same values, on both data planes — and the pruning-aware
        count-annotation validator must balance exactly."""
        plan, data, splits, zone_map, reduces = _build(case)
        reduces = min(reduces, plan.num_intermediate_keys)
        oracle = plan.reference_output(data)
        for data_plane in ("record", "columnar"):
            outs = {}
            for prune in (False, True):
                job, barrier, sidr = build_sidr_job(
                    plan, list(splits), reduces, data,
                    data_plane=data_plane, prune=prune, zone_map=zone_map,
                )
                res = LocalEngine().run_serial(job, barrier)
                outs[prune] = res.all_records()
                validator = job.context["reduce_start_validator"]
                assert validator.observed == {
                    l: e for l, e in enumerate(validator.expected)
                }
                if prune and sidr.pruning is not None:
                    assert res.counters.get("plan.splits.pruned") == (
                        sidr.pruning.num_pruned
                    )
            assert outs[True] == outs[False]
            assert dict(outs[True]) == oracle

    @given(case=prune_case())
    @settings(max_examples=60, **SETTINGS)
    def test_prune_result_geometry_is_consistent(self, case):
        plan, data, splits, zone_map, reduces = _build(case)
        partition = partition_plus(
            plan.intermediate_space, min(reduces, plan.num_intermediate_keys)
        )
        result = prune_splits(
            plan, splits, partition, zone_map,
            plan.operator.prune_predicate(),
        )
        if result is None:
            return
        # At least one split always survives (keep-one guard).
        assert len(result.surviving) >= 1
        assert len(result.surviving) + result.num_pruned == len(splits)
        # Survivors are re-indexed contiguously for engine task numbering.
        assert [sp.index for sp in result.surviving] == list(
            range(len(result.surviving))
        )
        # Expected counts cover every keyblock and total the volume the
        # surviving splits actually deliver.
        assert len(result.expected_counts) == partition.num_blocks
        delivered = sum(
            sp_slab.intersect(plan.instance_region(key)).volume
            for sp in result.surviving
            for sp_slab in (s.intersect(plan.covered) for s in sp.slabs)
            if not sp_slab.is_empty
            for key in plan.image_of(sp_slab).iter_coords()
        )
        assert sum(result.expected_counts) == delivered
        # Empty blocks are exactly the all-synthesized ones.
        for b in result.empty_blocks:
            assert len(result.synth_keys[b]) == partition.blocks[b].num_keys


class TestSerialization:
    @given(case=prune_case())
    @settings(max_examples=40, **SETTINGS)
    def test_zone_map_survives_dict_round_trip(self, case):
        plan, data, splits, zone_map, _ = _build(case)
        meta = _meta(data.shape).with_zone_maps((zone_map,))
        back = DatasetMetadata.from_dict(meta.to_dict())
        assert back.zone_map("v") == zone_map
        # Derived stats stay out of metadata equality (a dataset with
        # and without an index holds the same logical data).
        assert back == _meta(data.shape)

    def test_zone_map_file_round_trip(self, tmp_path):
        from repro.scidata.nclite import read_header, write_nclite

        shape = (12, 6)
        rng = np.random.default_rng(3)
        data = rng.uniform(-5, 5, size=shape)
        meta = _meta(shape)
        path = tmp_path / "zm.ncl"
        write_nclite(path, meta, {"v": data})
        header = read_header(path)
        zm = header.metadata.zone_map("v")
        assert zm is not None
        assert zm == build_zone_map("v", data)

    def test_write_slab_invalidates_zone_maps(self, tmp_path):
        """Mutating a dataset drops its zone maps in place (offsets are
        preserved), so a later query degrades to no pruning instead of
        pruning against stale statistics."""
        from repro.arrays.slab import Slab
        from repro.scidata.dataset import open_dataset
        from repro.scidata.nclite import read_header, write_nclite

        shape = (10, 4)
        data = np.zeros(shape)
        path = tmp_path / "mut.ncl"
        write_nclite(path, _meta(shape), {"v": data})
        assert read_header(path).metadata.zone_maps
        slab = Slab((0, 0), (1, 4))
        with open_dataset(path, mode="r+") as ds:
            ds.write_slab("v", slab, np.full((1, 4), 99.0))
        header = read_header(path)
        assert not header.metadata.zone_maps
        with open_dataset(path) as ds:
            got = ds.read_slab("v", slab)
        np.testing.assert_array_equal(got, np.full((1, 4), 99.0))

    def test_from_dict_without_zone_maps_degrades(self):
        """Pre-index metadata documents (no ``zone_maps`` key) load fine
        and simply provide no index."""
        doc = _meta((4, 4)).to_dict()
        assert "zone_maps" not in doc
        meta = DatasetMetadata.from_dict(doc)
        assert meta.zone_maps == ()
        assert meta.zone_map("v") is None

    def test_malformed_zone_map_doc_raises_format_error(self):
        doc = _meta((4, 4)).with_zone_maps(
            (build_zone_map("v", np.zeros((4, 4))),)
        ).to_dict()
        doc["zone_maps"][0].pop("mins")
        with pytest.raises(FormatError):
            DatasetMetadata.from_dict(doc)


class TestDegrade:
    def _plan(self, shape=(8, 4), threshold=100.0):
        return StructuralQuery(
            variable="v",
            extraction_shape=(2, 4),
            operator=ThresholdFilterOp(threshold=threshold),
        ).compile(_meta(shape))

    def test_wrong_variable_zone_map_is_ignored(self):
        plan = self._plan()
        splits = slice_splits(plan, num_splits=4)
        partition = partition_plus(plan.intermediate_space, 2)
        zm = build_zone_map("other", np.zeros((8, 4)))
        assert prune_splits(
            plan, splits, partition, zm, plan.operator.prune_predicate()
        ) is None

    def test_wrong_space_zone_map_is_ignored(self):
        """A zone map built for different dimensions (stale after a
        schema change) degrades to no pruning rather than erroring."""
        plan = self._plan()
        splits = slice_splits(plan, num_splits=4)
        partition = partition_plus(plan.intermediate_space, 2)
        zm = build_zone_map("v", np.zeros((6, 4)))
        assert prune_splits(
            plan, splits, partition, zm, plan.operator.prune_predicate()
        ) is None

    def test_no_predicate_means_no_pruning(self):
        from repro.query.operators import RangeExceedsOp

        plan = StructuralQuery(
            variable="v",
            extraction_shape=(2, 4),
            operator=RangeExceedsOp(threshold=0.0),
        ).compile(_meta((8, 4)))
        assert plan.operator.prune_predicate() is None
        assert derive_zone_map(plan, np.zeros((8, 4))) is None

    def test_unreadable_source_degrades(self, tmp_path):
        plan = self._plan()
        assert derive_zone_map(plan, str(tmp_path / "missing.ncl")) is None

    def test_keep_one_guard_on_fully_prunable_job(self):
        """Everything below threshold: all splits are prunable, but a
        job needs a map task — exactly one survives and the output still
        matches the oracle (every key's list is empty)."""
        plan = self._plan(threshold=100.0)
        data = np.zeros((8, 4))
        splits = slice_splits(plan, num_splits=4)
        zm = build_zone_map("v", data)
        job, barrier, sidr = build_sidr_job(
            plan, splits, 2, data, zone_map=zm
        )
        assert sidr.pruning is not None
        assert len(sidr.pruning.surviving) == 1
        assert sidr.pruning.num_pruned == len(splits) - 1
        res = LocalEngine().run_serial(job, barrier)
        assert dict(res.all_records()) == plan.reference_output(data)


class TestZoneMapStructure:
    def test_default_tile_shape_targets_row_groups(self):
        space = (4096, 64, 64)
        tile = default_tile_shape(space)
        assert tile[1:] == (64, 64)
        assert 1 <= tile[0] <= space[0]

    def test_region_bounds_are_conservative(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(-10, 10, size=(16, 8))
        zm = build_zone_map("v", data, tile_shape=(4, 4))
        from repro.arrays.slab import Slab

        region = Slab((3, 1), (6, 5))  # straddles tile boundaries
        lo, hi = zm.region_bounds(region)
        cells = data[region.as_slices()]
        assert lo <= cells.min() and hi >= cells.max()

    def test_constant_zone_map_matches_built(self):
        space = (9, 5)
        fill = 2.5
        analytic = constant_zone_map("v", space, fill, tile_shape=(4, 5))
        built = build_zone_map(
            "v", np.full(space, fill), tile_shape=(4, 5), fill_value=fill
        )
        assert analytic == built

    def test_mismatched_grid_rejected(self):
        zm = build_zone_map("v", np.zeros((8, 4)))
        with pytest.raises(FormatError):
            ZoneMap(
                variable=zm.variable,
                space=zm.space,
                tile_shape=zm.tile_shape,
                mins=zm.mins[:1],
                maxs=zm.maxs,
                counts=zm.counts,
            )
