"""Tests for pipelined computations over early results (§6)."""

import numpy as np
import pytest

from repro.query.language import StructuralQuery
from repro.query.operators import MaxOp, MeanOp
from repro.sidr.pipeline import PipelinedQuery


@pytest.fixture(scope="module")
def pipeline(temp_field, weekly_mean_plan):
    # Stage 1: weekly mean (K'_T = {4, 2, 6}).
    # Stage 2: max over 2-week windows of the weekly means ({2, 2, 6}).
    stage2 = StructuralQuery(
        variable="weekly",
        extraction_shape=(2, 1, 1),
        operator=MaxOp(),
    )
    return PipelinedQuery(
        weekly_mean_plan,
        stage2,
        stage1_reduces=4,
        stage2_reduces=2,
        stage1_splits=7,
        stage2_splits=2,
    )


class TestConstruction:
    def test_stage2_space_is_stage1_output(self, pipeline):
        assert pipeline.stage2.input_space == (4, 2, 6)
        assert pipeline.stage2.intermediate_space == (2, 2, 6)

    def test_gates_reference_real_blocks(self, pipeline):
        n = pipeline.s1_plan.num_reduce_tasks
        for gate in pipeline.gates:
            assert gate and all(0 <= l < n for l in gate)


class TestExecution:
    def test_output_matches_composed_oracle(self, pipeline, temp_data):
        result = pipeline.run(temp_data)
        oracle = pipeline.reference(temp_data)
        assert result.stage2_outputs.keys() == oracle.keys()
        for k, want in oracle.items():
            assert result.stage2_outputs[k] == pytest.approx(want)

    def test_stage2_overlaps_stage1(self, pipeline, temp_data):
        """The §6 goal: downstream work starts on early results."""
        result = pipeline.run(temp_data)
        assert result.stage2_maps_before_stage1_done() >= 1

    def test_gates_respected(self, pipeline, temp_data):
        """No stage-2 map runs before every stage-1 keyblock it reads has
        committed (replay the interleaving log)."""
        result = pipeline.run(temp_data)
        committed: set[int] = set()
        for ev in result.events:
            if ev.stage == 1 and ev.kind == "keyblock":
                committed.add(ev.index)
            elif ev.stage == 2 and ev.kind == "map":
                assert pipeline.gates[ev.index] <= committed, (
                    f"stage-2 map {ev.index} ran before its gate"
                )

    def test_stage1_outputs_also_returned(self, pipeline, temp_data,
                                          weekly_mean_plan):
        result = pipeline.run(temp_data)
        oracle1 = weekly_mean_plan.reference_output(temp_data)
        assert result.stage1_outputs.keys() == oracle1.keys()
        for k in oracle1:
            assert result.stage1_outputs[k] == pytest.approx(oracle1[k])


class TestFromFile:
    def test_pipeline_from_nclite(self, tmp_path, temp_field, weekly_mean_plan):
        path = tmp_path / "t.nc"
        temp_field.write(path).close()
        stage2 = StructuralQuery(
            variable="weekly",
            extraction_shape=(1, 2, 1),
            operator=MeanOp(),
        )
        pipe = PipelinedQuery(
            weekly_mean_plan,
            stage2,
            stage1_reduces=3,
            stage2_reduces=2,
            stage1_splits=5,
            stage2_splits=2,
        )
        data = temp_field.arrays["temperature"].astype(np.float64)
        result = pipe.run(str(path))
        oracle = pipe.reference(data)
        for k, want in oracle.items():
            assert result.stage2_outputs[k] == pytest.approx(want)
