"""Tests for the human-readable trace report (repro.obs.report)."""

import pytest

from repro.mapreduce.engine import DependencyBarrier, GlobalBarrier, LocalEngine
from repro.obs import format_report, format_run_report, load_trace, normalized_runs, write_chrome_trace
from tests.test_mapreduce_engine import counting_job, ranged_job


@pytest.fixture(scope="module")
def dep_run():
    job, deps = ranged_job()
    res = LocalEngine().run_serial(job, DependencyBarrier(deps))
    return normalized_runs(res.obs)[0]


class TestRunReport:
    def test_header_and_phase_table(self, dep_run):
        text = format_run_report(dep_run)
        assert text.startswith("== ranged ==")
        assert "per-phase totals:" in text
        for name in ("map.read", "map.spill", "reduce.fetch", "reduce.reduce"):
            assert name in text

    def test_barrier_wait_section(self, dep_run):
        text = format_run_report(dep_run)
        assert "barrier waits (per reduce):" in text
        for p in range(4):
            assert f"reduce {p}" in text
        assert "wait total" in text

    def test_early_start_timeline(self, dep_run):
        text = format_run_report(dep_run)
        # Serial DependencyBarrier run: reduces 0..2 start before the
        # last map finishes (see test_mapreduce_engine).
        assert "early starts: 3 of 4 reduces began" in text
        assert "maps done" in text

    def test_skew_summary(self, dep_run):
        text = format_run_report(dep_run)
        assert "reduce skew: min/median/max" in text
        assert "max/median" in text

    def test_metric_callouts(self, dep_run):
        text = format_run_report(dep_run)
        assert "reduce group sizes:" in text
        assert "counters:" in text
        assert "shuffle.fetch.connections=8" in text

    def test_latency_percentile_table(self, dep_run):
        text = format_run_report(dep_run)
        assert "latency percentiles (bucket-interpolated):" in text
        # Every populated *.seconds histogram gets a row with p50/p95/max.
        for col in ("p50", "p95", "max"):
            assert col in text
        assert "barrier.wait.seconds" in text
        assert "shuffle.fetch.seconds" in text

    def test_top_limits_early_start_lines(self):
        job, deps = ranged_job(num_splits=16, num_reduces=8)
        res = LocalEngine().run_serial(job, DependencyBarrier(deps))
        text = format_run_report(normalized_runs(res.obs)[0], top=2)
        assert "... (" in text

    def test_global_barrier_has_no_early_starts(self):
        res = LocalEngine().run_serial(counting_job(), GlobalBarrier())
        text = format_run_report(normalized_runs(res.obs)[0])
        assert "early starts: 0 of 3" in text


class TestWholeTrace:
    def test_multi_run_sections(self, tmp_path):
        job, deps = ranged_job()
        eng = LocalEngine()
        a = eng.run_serial(job, DependencyBarrier(deps))
        b = eng.run_serial(job, GlobalBarrier())
        path = write_chrome_trace(
            tmp_path / "t.json", [("sidr", a.obs), ("stock", b.obs)]
        )
        text = format_report(load_trace(path))
        assert "== sidr ==" in text
        assert "== stock ==" in text
        assert text.index("== sidr ==") < text.index("== stock ==")

    def test_simulated_trace_reports(self):
        from repro.bench.figures import fig13_skew

        result = fig13_skew(scale=20)
        runs = normalized_runs(
            [(k, tl.to_observability(k)) for k, tl in result.timelines.items()]
        )
        text = format_report(runs)
        assert "== stock ==" in text and "== SIDR ==" in text
        assert "barrier waits (per reduce):" in text
