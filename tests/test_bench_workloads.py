"""Tests for the paper workload builders (reduced scale for speed)."""

import pytest

from repro.bench.workloads import (
    PAPER_NUM_SPLITS,
    SystemVariant,
    query1_workload,
    query2_workload,
    sim_spec,
    skew_workload,
    small_query1,
    small_query2,
)
from repro.errors import QueryError
from repro.sim.workload import (
    DependencyDistribution,
    ParitySkewDistribution,
    UniformDistribution,
)

SMALL = 120  # splits, instead of the paper's 2781


class TestQuery1:
    def test_paper_scale_metadata(self):
        wl = query1_workload(num_splits=SMALL)
        assert wl.plan.intermediate_space == (3600, 10, 20, 5)
        assert wl.num_splits == SMALL
        assert wl.intermediate_ratio == 1.0

    def test_paper_split_count_default(self):
        wl = query1_workload()
        assert wl.num_splits == PAPER_NUM_SPLITS

    def test_total_bytes_348gb(self):
        wl = query1_workload(num_splits=SMALL)
        total = sum(sp.length_bytes for sp in wl.splits)
        # 93.31e9 float32 cells ~ 347.6 GiB
        assert 340 < total / (1 << 30) < 355


class TestQuery2:
    def test_keyspace(self):
        wl = query2_workload(num_splits=SMALL)
        assert wl.plan.intermediate_space == (3600, 9, 18, 5)

    def test_tiny_output(self):
        q1 = query1_workload(num_splits=SMALL)
        q2 = query2_workload(num_splits=SMALL)
        assert q2.intermediate_ratio < 0.01
        assert q2.total_output_bytes < q1.total_output_bytes * 200


class TestSimSpec:
    @pytest.mark.parametrize("variant", list(SystemVariant))
    def test_spec_builds(self, variant):
        wl = query1_workload(num_splits=SMALL)
        spec = sim_spec(wl, variant, 8)
        assert spec.num_maps == SMALL
        assert spec.num_reduces == 8

    def test_hadoop_amplification(self):
        wl = query1_workload(num_splits=SMALL)
        h = sim_spec(wl, SystemVariant.HADOOP, 4)
        sh = sim_spec(wl, SystemVariant.SCIHADOOP, 4)
        assert h.splits[0].read_bytes > 2 * sh.splits[0].read_bytes
        assert h.splits[0].local_fraction_preferred < 0.5
        assert sh.splits[0].local_fraction_preferred == 1.0

    def test_sidr_distribution_structured(self):
        wl = query1_workload(num_splits=SMALL)
        spec = sim_spec(wl, SystemVariant.SIDR, 8)
        assert isinstance(spec.distribution, DependencyDistribution)
        assert spec.dense_output
        # Dense per-reduce output ~ total/r vs sentinel total each.
        stock = sim_spec(wl, SystemVariant.SCIHADOOP, 8)
        assert spec.reduce_output_bytes[0] < stock.reduce_output_bytes[0]

    def test_stock_distribution_uniform(self):
        wl = query1_workload(num_splits=SMALL)
        spec = sim_spec(wl, SystemVariant.SCIHADOOP, 8)
        assert isinstance(spec.distribution, UniformDistribution)
        assert not spec.dense_output

    def test_skewed_stock(self):
        wl = skew_workload(num_splits=SMALL)
        spec = sim_spec(wl, SystemVariant.SCIHADOOP, 8, skewed=True)
        assert isinstance(spec.distribution, ParitySkewDistribution)

    def test_skewed_sidr_rejected(self):
        wl = skew_workload(num_splits=SMALL)
        with pytest.raises(QueryError):
            sim_spec(wl, SystemVariant.SIDR, 8, skewed=True)

    def test_weights_proportional_to_keys(self):
        wl = query1_workload(num_splits=SMALL)
        spec = sim_spec(wl, SystemVariant.SIDR, 7)
        assert sum(spec.reduce_weights) == pytest.approx(1.0)


class TestSmallWorkloads:
    def test_small_query1_runs(self):
        field, plan = small_query1()
        assert plan.operator.name == "median"
        assert field.arrays["windspeed"].shape == (24, 12, 12, 10)

    def test_small_query2_selectivity(self):
        field, plan = small_query2(shape=(40, 20, 20))
        assert plan.operator.name == "filter_gt"
        data = field.arrays["reading"]
        assert (data > 3.0).mean() < 0.01
