"""Unit and property tests for partition functions — including the §4.3
skew pathology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.mapreduce.partitioner import (
    HashPartitioner,
    JavaStyleKeyHash,
    LinearIndexHash,
    RangePartitioner,
)


class TestJavaHash:
    def test_deterministic(self):
        h = JavaStyleKeyHash()
        assert h.hash_key((3, 4, 5)) == h.hash_key((3, 4, 5))

    def test_scalar_int_keys(self):
        h = JavaStyleKeyHash()
        assert h.hash_key(7) == h.hash_key((7,))

    def test_non_negative(self):
        h = JavaStyleKeyHash()
        assert h.hash_key((2**31 - 1, 2**31 - 1)) >= 0

    def test_vectorized_matches_scalar(self):
        h = JavaStyleKeyHash()
        keys = np.array([[0, 0], [1, 2], [1000, 2000], [7, 7]])
        got = h.hash_many(keys)
        assert got.tolist() == [h.hash_key(tuple(k)) for k in keys]

    def test_even_keys_constant_parity(self):
        """The §4.3 pathology: all-even key components give hashes of one
        parity, so modulo an even reducer count only half the reducers
        receive data."""
        h = JavaStyleKeyHash()
        parities = {
            h.hash_key((2 * a, 2 * b, 2 * c)) % 2
            for a in range(5)
            for b in range(5)
            for c in range(5)
        }
        assert len(parities) == 1

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=4))
    def test_vectorized_agrees(self, key):
        h = JavaStyleKeyHash()
        arr = np.array([key])
        assert h.hash_many(arr)[0] == h.hash_key(tuple(key))


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner()
        for k in [(0,), (5, 5), (123, 456, 789)]:
            assert 0 <= p.partition(k, 7) < 7

    def test_skew_on_even_keys(self):
        """Figure 13's setup: patterned (all-even) keys starve half the
        reduce tasks under Hadoop's partitioner."""
        p = HashPartitioner()
        targets = {
            p.partition((2 * a, 2 * b), 22) for a in range(40) for b in range(40)
        }
        # Only one parity class of the 22 partitions is ever hit.
        assert len(targets) <= 11

    def test_dense_keys_spread(self):
        """Un-patterned keys spread over all partitions."""
        p = HashPartitioner()
        targets = {p.partition((a, b), 8) for a in range(20) for b in range(20)}
        assert len(targets) == 8

    def test_invalid_partition_count(self):
        with pytest.raises(PartitionError):
            HashPartitioner().partition((1,), 0)

    def test_partition_many_matches_scalar(self):
        p = HashPartitioner()
        keys = np.array([[i, j] for i in range(10) for j in range(10)])
        got = p.partition_many(keys, 5)
        want = [p.partition(tuple(k), 5) for k in keys]
        assert got.tolist() == want


class TestLinearIndexHash:
    def test_matches_row_major(self):
        h = LinearIndexHash((3, 4))
        assert h.hash_key((1, 2)) == 6

    def test_vectorized(self):
        h = LinearIndexHash((3, 4))
        got = h.hash_many(np.array([[0, 0], [2, 3]]))
        assert got.tolist() == [0, 11]

    def test_bad_space(self):
        with pytest.raises(PartitionError):
            LinearIndexHash((0, 4))


class TestRangePartitioner:
    def test_boundaries_validation(self):
        with pytest.raises(PartitionError):
            RangePartitioner((10,), [])
        with pytest.raises(PartitionError):
            RangePartitioner((10,), [5, 9])  # last != volume
        with pytest.raises(PartitionError):
            RangePartitioner((10,), [5, 5, 10])  # not strictly increasing
        with pytest.raises(PartitionError):
            RangePartitioner((10,), [0, 10])  # empty first partition

    def test_partition_lookup(self):
        p = RangePartitioner((10,), [4, 8, 10])
        assert p.partition((0,), 3) == 0
        assert p.partition((3,), 3) == 0
        assert p.partition((4,), 3) == 1
        assert p.partition((9,), 3) == 2

    def test_wrong_count_rejected(self):
        p = RangePartitioner((10,), [4, 8, 10])
        with pytest.raises(PartitionError):
            p.partition((0,), 4)

    def test_partition_many_matches_scalar(self):
        p = RangePartitioner((4, 5), [7, 14, 20])
        keys = np.array([[i, j] for i in range(4) for j in range(5)])
        got = p.partition_many(keys, 3)
        want = [p.partition(tuple(k), 3) for k in keys]
        assert got.tolist() == want

    @given(st.data())
    @settings(max_examples=80)
    def test_contiguous_and_total(self, data):
        """Every key lands in exactly one partition and partitions are
        contiguous in row-major order."""
        space = tuple(
            data.draw(st.integers(1, 5))
            for _ in range(data.draw(st.integers(1, 3)))
        )
        from repro.arrays.shape import volume

        vol = volume(space)
        n = data.draw(st.integers(1, min(4, vol)))
        if n > 1:
            cuts = sorted(
                data.draw(
                    st.lists(
                        st.integers(1, vol - 1),
                        min_size=n - 1,
                        max_size=n - 1,
                        unique=True,
                    )
                )
            ) + [vol]
        else:
            cuts = [vol]
        p = RangePartitioner(space, cuts)
        from repro.arrays.slab import Slab

        last = 0
        for c in Slab.whole(space).iter_coords():
            part = p.partition(c, n)
            assert part >= last  # monotone in row-major order
            last = part
