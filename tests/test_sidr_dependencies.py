"""Unit and property tests for dependency analysis (paper §3.2).

The load-bearing invariant: the *predicted* dependency map must exactly
match the *observed* producer/consumer relation of a real engine run —
an under-approximation would start reduces early (wrong results), an
over-approximation would waste connections.
"""

import pytest

from repro.errors import PartitionError
from repro.mapreduce.engine import LocalEngine
from repro.query.splits import aligned_slice_splits, slice_splits
from repro.sidr.dependencies import (
    DependencyMap,
    compute_dependencies,
    recompute_for_block,
)
from repro.sidr.partition_plus import partition_plus


def build(plan, num_splits, r, aligned=False, skew_bound=None):
    splits = (
        aligned_slice_splits(plan, num_splits=num_splits)
        if aligned
        else slice_splits(plan, num_splits=num_splits)
    )
    part = partition_plus(plan.intermediate_space, r, skew_bound=skew_bound)
    deps = compute_dependencies(plan, splits, part)
    return splits, part, deps


class TestBasics:
    def test_bidirectional_consistency(self, weekly_mean_plan):
        _, _, deps = build(weekly_mean_plan, 7, 4)
        deps.validate_complete()

    def test_every_block_has_producers(self, weekly_mean_plan):
        _, _, deps = build(weekly_mean_plan, 7, 4)
        assert all(len(d) >= 1 for d in deps.dependencies)

    def test_every_split_produces(self, weekly_mean_plan):
        _, _, deps = build(weekly_mean_plan, 7, 4)
        assert all(len(p) >= 1 for p in deps.producers)

    def test_contiguous_splits_have_contiguous_deps(self, weekly_mean_plan):
        """Row-ordered splits feed row-ordered keyblocks: I_l are
        intervals of split indexes (Figure 8b's alignment)."""
        _, _, deps = build(weekly_mean_plan, 14, 4)
        for d in deps.dependencies:
            ds = sorted(d)
            assert ds == list(range(ds[0], ds[-1] + 1))

    def test_connection_counts(self, weekly_mean_plan):
        splits, part, deps = build(weekly_mean_plan, 14, 4)
        assert deps.hadoop_connections() == 14 * 4
        assert deps.sidr_connections == sum(len(d) for d in deps.dependencies)
        assert deps.sidr_connections < deps.hadoop_connections()

    def test_aligned_splits_disjoint_deps(self, weekly_mean_plan):
        """With extraction-aligned splits, each split feeds exactly the
        blocks covering its K' rows; total connections ~= num splits."""
        splits, part, deps = build(weekly_mean_plan, 4, 4, aligned=True)
        assert deps.sidr_connections <= len(splits) + part.num_blocks

    def test_mismatched_partition_space(self, weekly_mean_plan):
        splits = slice_splits(weekly_mean_plan, num_splits=4)
        wrong = partition_plus((5, 5), 2)
        with pytest.raises(PartitionError):
            compute_dependencies(weekly_mean_plan, splits, wrong)


class TestStoreVsRecompute:
    def test_recompute_matches_store(self, weekly_mean_plan):
        splits, part, deps = build(weekly_mean_plan, 9, 5)
        for l in range(part.num_blocks):
            assert (
                recompute_for_block(weekly_mean_plan, splits, part, l)
                == deps.dependencies[l]
            )


class TestGroundTruth:
    """Predicted dependencies vs what the engine actually produces."""

    def _observed_producers(self, plan, splits, part, data):
        """Run the maps for real and record which partitions each split's
        output actually goes to."""
        from repro.mapreduce.engine import LocalEngine
        from repro.mapreduce.job import JobConf
        from repro.mapreduce.mapper import ChunkAggregateMapper
        from repro.mapreduce.partitioner import RangePartitioner
        from repro.mapreduce.reducer import ConcatReducer
        from repro.mapreduce.shuffle import ShuffleStore
        from repro.query.recordreader import make_reader_factory

        rp = RangePartitioner(part.space, part.cell_boundaries())
        job = JobConf(
            name="gt",
            splits=list(splits),
            reader_factory=make_reader_factory(data, plan),
            mapper_factory=lambda: ChunkAggregateMapper(plan.operator),
            reducer_factory=ConcatReducer,
            partitioner=rp,
            num_reduce_tasks=part.num_blocks,
        )
        engine = LocalEngine()
        store = ShuffleStore()
        from repro.mapreduce.counters import Counters
        from repro.mapreduce.engine import EngineTrace
        from repro.obs import JobObservability

        obs = JobObservability("gt", legacy_trace=EngineTrace())
        for i in range(len(splits)):
            engine._run_map(job, i, store, Counters(), obs)
        return [store.index_of(i).partitions for i in range(len(splits))]

    @pytest.mark.parametrize("num_splits,r", [(5, 3), (9, 4), (14, 6)])
    def test_predicted_equals_observed(
        self, weekly_mean_plan, temp_data, num_splits, r
    ):
        splits, part, deps = build(weekly_mean_plan, num_splits, r)
        observed = self._observed_producers(
            weekly_mean_plan, splits, part, temp_data
        )
        for i, obs in enumerate(observed):
            assert deps.producers[i] == obs, f"split {i}"

    def test_predicted_equals_observed_4d(self, wind_median_plan, wind_field):
        data = wind_field.arrays["windspeed"].astype(float)
        splits, part, deps = build(wind_median_plan, 6, 4)
        observed = self._observed_producers(
            wind_median_plan, splits, part, data
        )
        for i, obs in enumerate(observed):
            assert deps.producers[i] == obs


class TestValidation:
    def test_missing_edge_detected(self):
        with pytest.raises(PartitionError):
            DependencyMap(
                num_splits=2,
                num_blocks=1,
                producers=(frozenset({0}), frozenset()),
                dependencies=(frozenset({0, 1}),),
            ).validate_complete()

    def test_starving_block_detected(self):
        with pytest.raises(PartitionError):
            DependencyMap(
                num_splits=1,
                num_blocks=1,
                producers=(frozenset(),),
                dependencies=(frozenset(),),
            ).validate_complete()

    def test_stats(self):
        dm = DependencyMap(
            num_splits=3,
            num_blocks=2,
            producers=(frozenset({0}), frozenset({0, 1}), frozenset({1})),
            dependencies=(frozenset({0, 1}), frozenset({1, 2})),
        )
        dm.validate_complete()
        assert dm.sidr_connections == 4
        assert dm.max_dependency_size() == 2
        assert dm.mean_dependency_size() == 2.0
