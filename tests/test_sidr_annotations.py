"""Unit and integration tests for count-annotation validation (§3.2.1)."""

import pytest

from repro.errors import BarrierViolationError
from repro.mapreduce.engine import DependencyBarrier, LocalEngine
from repro.query.language import StructuralQuery
from repro.query.operators import SumOp
from repro.query.splits import slice_splits
from repro.sidr.annotations import (
    CountAnnotationValidator,
    expected_source_cells,
)
from repro.sidr.partition_plus import partition_plus
from repro.sidr.planner import build_plan


class TestExpectedCounts:
    def test_truncate_fast_path(self, weekly_mean_plan):
        part = partition_plus(weekly_mean_plan.intermediate_space, 4)
        counts = expected_source_cells(weekly_mean_plan, part)
        assert sum(counts) == weekly_mean_plan.covered.volume
        for b, c in zip(part.blocks, counts):
            assert c == b.num_keys * 35

    def test_partial_instances_slow_path(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=SumOp(),
            keep_partial_instances=True,
        )
        plan = q.compile(temp_field.metadata)
        part = partition_plus(plan.intermediate_space, 3)
        counts = expected_source_cells(plan, part)
        # Clipped instances shrink totals below keys*cells_per_instance.
        assert sum(counts) == plan.subset.volume
        assert any(
            c < b.num_keys * plan.cells_per_instance
            for b, c in zip(part.blocks, counts)
        )


class TestValidator:
    def test_exact_pass(self):
        v = CountAnnotationValidator(expected=[10, 20])
        v.validate(0, 10)
        v.validate(1, 20)
        assert v.observed == {0: 10, 1: 20}

    def test_short_tally_rejected(self):
        v = CountAnnotationValidator(expected=[10])
        with pytest.raises(BarrierViolationError, match="dependency barrier"):
            v.validate(0, 9)

    def test_excess_tally_rejected_when_exact(self):
        v = CountAnnotationValidator(expected=[10])
        with pytest.raises(BarrierViolationError, match="misrouted"):
            v.validate(0, 11)

    def test_excess_allowed_when_not_exact(self):
        v = CountAnnotationValidator(expected=[10], exact=False)
        v.validate(0, 11)

    def test_unknown_partition(self):
        v = CountAnnotationValidator(expected=[10])
        with pytest.raises(BarrierViolationError):
            v.validate(5, 10)


class TestEndToEndValidation:
    """The paper's own correctness check: every reduce start in a SIDR
    job tallies exactly its keyblock's source cells."""

    def test_sidr_job_validates(self, weekly_mean_plan, temp_data):
        splits = slice_splits(weekly_mean_plan, num_splits=7)
        plan = build_plan(weekly_mean_plan, splits, 4)
        job, barrier = plan.configure_job(temp_data, validate_counts=True)
        res = LocalEngine().run_serial(job, barrier)
        validator = job.context["reduce_start_validator"]
        assert validator.observed == {
            l: e for l, e in enumerate(validator.expected)
        }
        assert res.counters.get("barrier.early.starts") > 0

    def test_corrupted_dependency_map_caught(self, weekly_mean_plan, temp_data):
        """Drop one producer from a dependency set: the reduce would start
        before all its data exists and the validator must abort the job."""
        splits = slice_splits(weekly_mean_plan, num_splits=7)
        plan = build_plan(weekly_mean_plan, splits, 4)
        job, _barrier = plan.configure_job(temp_data, validate_counts=True)
        deps = plan.deps.dependency_barrier()
        # Remove the largest split from block 1's dependencies.
        victim = max(deps[1])
        deps[1] = deps[1] - {victim}
        bad_barrier = DependencyBarrier(deps)
        with pytest.raises(BarrierViolationError):
            LocalEngine().run_serial(job, bad_barrier)

    def test_threaded_job_validates(self, weekly_mean_plan, temp_data):
        splits = slice_splits(weekly_mean_plan, num_splits=7)
        plan = build_plan(weekly_mean_plan, splits, 3)
        job, barrier = plan.configure_job(temp_data, validate_counts=True)
        res = LocalEngine().run_threaded(job, barrier)
        assert len(res.outputs) == 3

    def test_combiner_does_not_break_tally(self, weekly_mean_plan, temp_data):
        """Combining shrinks record counts but not source annotations —
        exactly why the annotation exists (§3.2.1).  Cell-level reading
        gives the combiner many records per key to collapse."""
        from repro.mapreduce.job import JobConf
        from repro.query.recordreader import (
            CellToChunkMapper,
            make_reader_factory,
        )
        from repro.mapreduce.reducer import AggregateReducer, CombinerAdapter

        splits = slice_splits(weekly_mean_plan, num_splits=7)
        plan = build_plan(weekly_mean_plan, splits, 4)
        op = weekly_mean_plan.operator
        job = JobConf(
            name="cells",
            splits=list(splits),
            reader_factory=make_reader_factory(
                temp_data, weekly_mean_plan, cell_level=True
            ),
            mapper_factory=lambda: CellToChunkMapper(weekly_mean_plan),
            reducer_factory=lambda: AggregateReducer(op),
            combiner_factory=lambda: CombinerAdapter(op),
            partitioner=plan.partitioner,
            num_reduce_tasks=4,
            contact_all_maps=False,
        )
        job.context["reduce_start_validator"] = plan.validator()
        res = LocalEngine().run_serial(job, plan.barrier)
        c = res.counters
        # Per-cell records collapse to one per (split, key)...
        assert c.get("combine.input.records") > c.get("combine.output.records")
        # ...yet the per-key source tallies still validated exactly (the
        # validator raised otherwise) and results match the oracle.
        oracle = weekly_mean_plan.reference_output(temp_data)
        got = dict(res.all_records())
        for k in oracle:
            assert got[k] == pytest.approx(oracle[k])
