"""Unit tests for early-result tracking and completion curves (§3.4)."""

import pytest

from repro.errors import SchedulerError
from repro.sidr.dependencies import DependencyMap
from repro.sidr.early_results import (
    CompletionCurve,
    EarlyResultTracker,
    completion_curve,
    task_completion_curve,
)
from repro.sidr.partition_plus import partition_plus


def deps_3blocks():
    return DependencyMap(
        num_splits=6,
        num_blocks=3,
        producers=(
            frozenset({0}),
            frozenset({0}),
            frozenset({1}),
            frozenset({1}),
            frozenset({2}),
            frozenset({2}),
        ),
        dependencies=(
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4, 5}),
        ),
    )


class TestTracker:
    def _tracker(self):
        part = partition_plus((6, 2), 3, skew_bound=2)
        return EarlyResultTracker(deps_3blocks(), part), part

    def test_initially_nothing_ready(self):
        tr, _ = self._tracker()
        assert tr.ready_blocks == frozenset()
        assert tr.ready_fraction() == 0.0

    def test_block_ready_when_deps_complete(self):
        tr, _ = self._tracker()
        assert tr.on_map_complete(0) == frozenset()
        assert tr.on_map_complete(1) == frozenset({0})
        assert tr.ready_blocks == frozenset({0})

    def test_ready_fraction_weighted_by_keys(self):
        tr, part = self._tracker()
        tr.on_map_complete(0)
        tr.on_map_complete(1)
        want = part.blocks[0].num_keys / 12
        assert tr.ready_fraction() == pytest.approx(want)

    def test_maps_needed_for(self):
        tr, _ = self._tracker()
        tr.on_map_complete(2)
        assert tr.maps_needed_for(1) == frozenset({3})

    def test_double_completion_rejected(self):
        tr, _ = self._tracker()
        tr.on_map_complete(0)
        with pytest.raises(SchedulerError):
            tr.on_map_complete(0)

    def test_all_maps_all_ready(self):
        tr, _ = self._tracker()
        for m in range(6):
            tr.on_map_complete(m)
        assert tr.ready_blocks == frozenset({0, 1, 2})
        assert tr.ready_fraction() == 1.0


class TestCurves:
    def test_completion_curve_ordering(self):
        part = partition_plus((6, 2), 3, skew_bound=2)
        curve = completion_curve(part, [30.0, 10.0, 20.0])
        assert curve.times == (10.0, 20.0, 30.0)
        assert curve.fractions[-1] == pytest.approx(1.0)
        assert curve.first_result_time() == 10.0
        assert curve.completion_time() == 30.0

    def test_fraction_at(self):
        c = CompletionCurve((1.0, 2.0, 3.0), (0.25, 0.5, 1.0))
        assert c.fraction_at(0.5) == 0.0
        assert c.fraction_at(1.0) == 0.25
        assert c.fraction_at(2.5) == 0.5
        assert c.fraction_at(99.0) == 1.0

    def test_time_at_fraction(self):
        c = CompletionCurve((1.0, 2.0, 3.0), (0.25, 0.5, 1.0))
        assert c.time_at_fraction(0.5) == 2.0
        assert c.time_at_fraction(0.9) == 3.0

    def test_empty_curve(self):
        c = CompletionCurve((), ())
        assert c.first_result_time() == float("inf")
        assert c.fraction_at(10) == 0.0

    def test_task_completion_curve(self):
        c = task_completion_curve([5.0, 1.0, 3.0])
        assert c.times == (1.0, 3.0, 5.0)
        assert c.fractions == (pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0)

    def test_length_mismatch(self):
        part = partition_plus((6, 2), 3, skew_bound=2)
        with pytest.raises(SchedulerError):
            completion_curve(part, [1.0, 2.0])
