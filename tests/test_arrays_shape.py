"""Unit tests for coordinate/shape arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arrays.shape import (
    as_coord,
    ceil_div,
    coord_add,
    coord_floordiv,
    coord_max,
    coord_min,
    coord_mod,
    coord_mul,
    coord_sub,
    volume,
)
from repro.errors import GeometryError, RankMismatchError

coords = st.lists(st.integers(-50, 50), min_size=1, max_size=5)
pos_coords = st.lists(st.integers(1, 50), min_size=1, max_size=5)


class TestAsCoord:
    def test_plain_ints(self):
        assert as_coord([1, 2, 3]) == (1, 2, 3)

    def test_numpy_ints(self):
        assert as_coord(np.array([4, 5], dtype=np.int32)) == (4, 5)

    def test_rejects_floats(self):
        with pytest.raises(GeometryError):
            as_coord([1.0, 2])

    def test_rejects_bool(self):
        with pytest.raises(GeometryError):
            as_coord([True, 2])

    def test_empty_ok(self):
        assert as_coord([]) == ()


class TestArithmetic:
    def test_add(self):
        assert coord_add((1, 2), (3, 4)) == (4, 6)

    def test_sub(self):
        assert coord_sub((5, 5), (2, 7)) == (3, -2)

    def test_mul(self):
        assert coord_mul((2, 3), (4, 5)) == (8, 15)

    def test_floordiv(self):
        assert coord_floordiv((7, 9), (2, 4)) == (3, 2)

    def test_floordiv_zero_raises(self):
        with pytest.raises(GeometryError):
            coord_floordiv((1, 2), (1, 0))

    def test_mod(self):
        assert coord_mod((7, 9), (2, 4)) == (1, 1)

    def test_min_max(self):
        assert coord_min((1, 5), (3, 2)) == (1, 2)
        assert coord_max((1, 5), (3, 2)) == (3, 5)

    def test_rank_mismatch(self):
        with pytest.raises(RankMismatchError):
            coord_add((1,), (1, 2))

    @given(coords, coords)
    def test_add_sub_roundtrip(self, a, b):
        if len(a) != len(b):
            a = a[: min(len(a), len(b))] or [0]
            b = b[: len(a)]
        a, b = tuple(a), tuple(b)
        assert coord_sub(coord_add(a, b), b) == a

    @given(coords, pos_coords)
    def test_divmod_identity(self, a, d):
        n = min(len(a), len(d))
        a, d = tuple(x for x in a[:n] if True) or (0,), tuple(d[:n]) or (1,)
        if len(a) != len(d):
            return
        q = coord_floordiv(a, d)
        r = coord_mod(a, d)
        assert coord_add(coord_mul(q, d), r) == a


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,want", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)]
    )
    def test_values(self, a, b, want):
        assert ceil_div(a, b) == want

    def test_nonpositive_divisor(self):
        with pytest.raises(GeometryError):
            ceil_div(4, 0)

    @given(st.integers(0, 10_000), st.integers(1, 100))
    def test_matches_math(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)


class TestVolume:
    def test_basic(self):
        assert volume((2, 3, 4)) == 24

    def test_rank_zero(self):
        assert volume(()) == 1

    def test_zero_extent(self):
        assert volume((5, 0, 3)) == 0

    def test_negative_raises(self):
        with pytest.raises(GeometryError):
            volume((2, -1))
