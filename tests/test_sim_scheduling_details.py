"""Fine-grained simulator scheduling tests: queue fairness, priorities,
reduce waves, and host placement."""

import pytest

from repro.sim.cluster import ClusterConfig
from repro.sim.costmodel import MB, CostModel
from repro.sim.jobsim import ExecutionMode, simulate_job
from repro.sim.workload import (
    DependencyDistribution,
    SimJobSpec,
    SimSplit,
    UniformDistribution,
)

TINY = ClusterConfig(num_nodes=2, hosts_per_rack=2)


def splits(n, **kw):
    return tuple(
        SimSplit(
            index=i,
            read_bytes=8 * MB,
            cells=(8 * MB) // 4,
            output_bytes=4 * MB,
            **kw,
        )
        for i in range(n)
    )


def contiguous(nmaps, r):
    shares = []
    for i in range(nmaps):
        lo, hi = i / nmaps * r, (i + 1) / nmaps * r
        d = {}
        l = int(lo)
        while l < hi and l < r:
            d[l] = (min(hi, l + 1) - max(lo, l)) / (hi - lo)
            l += 1
        shares.append(d)
    return DependencyDistribution(shares, r)


class TestReduceWaves:
    def test_more_reduces_than_slots_run_in_waves(self):
        """TINY has 6 reduce slots; 12 reduce tasks need two waves —
        the second wave's tasks are scheduled strictly later."""
        spec = SimJobSpec(
            name="waves",
            splits=splits(12),
            distribution=UniformDistribution(12),
            reduce_output_bytes=tuple([1 * MB] * 12),
        )
        tl = simulate_job(spec, TINY, mode=ExecutionMode.STOCK)
        sched = sorted(tl.reduce_scheduled)
        assert sched[5] == 0.0       # first wave fills all 6 slots at t=0
        assert sched[6] > 0.0        # second wave waits for a slot

    def test_stock_reduces_scheduled_by_id(self):
        spec = SimJobSpec(
            name="order",
            splits=splits(12),
            distribution=UniformDistribution(12),
            reduce_output_bytes=tuple([1 * MB] * 12),
        )
        tl = simulate_job(spec, TINY, mode=ExecutionMode.STOCK)
        # The first 6 ids occupy wave one (§3.3: "monotonically
        # increasing order of their IDs").
        first_wave = sorted(
            range(12), key=lambda l: tl.reduce_scheduled[l]
        )[:6]
        assert set(first_wave) == set(range(6))


class TestPriorities:
    def test_sidr_priorities_schedule_first(self):
        nmaps, r = 16, 8
        prio = tuple(0.0 if l >= 6 else 1.0 for l in range(r))
        spec = SimJobSpec(
            name="prio",
            splits=splits(nmaps),
            distribution=contiguous(nmaps, r),
            reduce_output_bytes=tuple([1 * MB] * r),
            dense_output=True,
            priorities=prio,
        )
        tl = simulate_job(spec, TINY, mode=ExecutionMode.SIDR)
        # Prioritized keyblocks (6, 7) are scheduled in the first wave.
        first_wave = sorted(range(r), key=lambda l: tl.reduce_scheduled[l])[:6]
        assert {6, 7} <= set(first_wave)

    def test_priorities_ignored_in_stock_mode(self):
        nmaps, r = 16, 8
        prio = tuple(float(r - l) for l in range(r))
        spec = SimJobSpec(
            name="prio-stock",
            splits=splits(nmaps),
            distribution=UniformDistribution(r),
            reduce_output_bytes=tuple([1 * MB] * r),
            priorities=prio,
        )
        tl = simulate_job(spec, TINY, mode=ExecutionMode.STOCK)
        first_wave = sorted(range(r), key=lambda l: tl.reduce_scheduled[l])[:6]
        assert set(first_wave) == set(range(6))  # still id order


class TestMapQueueFairness:
    def test_all_maps_run_even_with_stale_host_queues(self):
        """Host queues may reference already-scheduled splits (lazy
        cleanup); every map still runs exactly once."""
        hosts = TINY.topology().host_names
        sp = tuple(
            SimSplit(
                index=i,
                read_bytes=8 * MB,
                cells=(8 * MB) // 4,
                output_bytes=1 * MB,
                # Every split prefers every host: maximal queue overlap.
                preferred_hosts=tuple(hosts),
            )
            for i in range(20)
        )
        spec = SimJobSpec(
            name="fair",
            splits=sp,
            distribution=UniformDistribution(2),
            reduce_output_bytes=(1 * MB, 1 * MB),
        )
        tl = simulate_job(spec, TINY, mode=ExecutionMode.STOCK)
        assert len(tl.map_finish) == 20
        assert all(f > 0 for f in tl.map_finish)

    def test_sidr_ineligible_maps_wait(self):
        """With one reduce slot total, only the scheduled reduces' deps
        may run; later maps start strictly after earlier reduces free
        slots."""
        one_slot = ClusterConfig(
            num_nodes=1, hosts_per_rack=1,
            map_slots_per_node=2, reduce_slots_per_node=1,
        )
        nmaps, r = 8, 4
        dist = contiguous(nmaps, r)
        spec = SimJobSpec(
            name="gate",
            splits=splits(nmaps),
            distribution=dist,
            reduce_output_bytes=tuple([1 * MB] * r),
            dense_output=True,
        )
        tl = simulate_job(spec, one_slot, mode=ExecutionMode.SIDR)
        # Block 3's maps (6, 7) only become eligible when reduce 3 is
        # scheduled, which needs the single slot released three times.
        assert tl.map_start[6] >= tl.reduce_finish[2]
        tl.validate()


class TestDeterminismAcrossModes:
    def test_same_total_work_different_order(self):
        """Stock and SIDR process identical inputs; their total map
        compute (sum of durations) matches when interference is off."""
        cost = CostModel(shuffle_interference=0.0, jitter_sigma=0.0)
        nmaps, r = 16, 4
        base = dict(
            splits=splits(nmaps),
            reduce_output_bytes=tuple([1 * MB] * r),
        )
        stock = simulate_job(
            SimJobSpec(name="a", distribution=UniformDistribution(r), **base),
            TINY, cost, mode=ExecutionMode.STOCK,
        )
        sidr = simulate_job(
            SimJobSpec(
                name="b", distribution=contiguous(nmaps, r),
                dense_output=True, **base,
            ),
            TINY, cost, mode=ExecutionMode.SIDR,
        )
        total_stock = sum(
            f - s for s, f in zip(stock.map_start, stock.map_finish)
        )
        total_sidr = sum(
            f - s for s, f in zip(sidr.map_start, sidr.map_finish)
        )
        assert total_stock == pytest.approx(total_sidr)
