"""Unit and property tests for structural operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.operators import (
    Chunk,
    CountOp,
    MaxOp,
    MeanOp,
    MedianOp,
    MinOp,
    Partial,
    StdDevOp,
    SumOp,
    ThresholdFilterOp,
    get_operator,
)

ALL_OPS = [SumOp(), CountOp(), MeanOp(), MinOp(), MaxOp(), StdDevOp(), MedianOp()]

values_arrays = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30
).map(lambda xs: np.asarray(xs))


def chunk_of(arr):
    arr = np.asarray(arr, dtype=np.float64).reshape(-1)
    return Chunk(arr, arr.size)


class TestChunk:
    def test_count_must_match(self):
        with pytest.raises(QueryError):
            Chunk(np.zeros(3), 2)


class TestReferenceSemantics:
    @pytest.mark.parametrize(
        "op,fn",
        [
            (SumOp(), np.sum),
            (MeanOp(), np.mean),
            (MinOp(), np.min),
            (MaxOp(), np.max),
            (MedianOp(), np.median),
        ],
    )
    def test_matches_numpy(self, op, fn):
        arr = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0])
        assert op.reference(arr) == pytest.approx(float(fn(arr)))

    def test_count(self):
        assert CountOp().reference(np.zeros((2, 3))) == 6

    def test_stddev_population(self):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        assert StdDevOp().reference(arr) == pytest.approx(float(np.std(arr)))

    def test_filter(self):
        op = ThresholdFilterOp(2.5)
        assert op.reference(np.array([1.0, 3.0, 2.0, 4.0])) == [3.0, 4.0]

    def test_filter_empty_result(self):
        assert ThresholdFilterOp(100.0).reference(np.array([1.0])) == []


class TestSplitInvariance:
    """The core correctness property: evaluating an instance from split
    chunks must equal evaluating it whole, regardless of how the cells
    are divided among chunks — this is what makes early reduce starts
    safe once all chunks have arrived."""

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_partition_of_cells(self, op, data):
        arr = data.draw(values_arrays)
        n = len(arr)
        n_cuts = data.draw(st.integers(0, min(4, n - 1)))
        cuts = (
            sorted(
                data.draw(
                    st.lists(
                        st.integers(1, n - 1),
                        min_size=n_cuts,
                        max_size=n_cuts,
                        unique=True,
                    )
                )
            )
            if n > 1
            else []
        )
        pieces = np.split(arr, cuts)
        partials = [op.map_partial(chunk_of(p)) for p in pieces if p.size]
        combined = op.combine(partials)
        assert combined.source_count == n
        got = op.finalize(combined)
        want = op.reference(arr)
        assert got == pytest.approx(want)

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    def test_combine_associative_two_ways(self, op):
        a, b, c = (chunk_of([1.0, 2.0]), chunk_of([3.0]), chunk_of([4.0, 5.0]))
        pa, pb, pc = (op.map_partial(x) for x in (a, b, c))
        left = op.combine([op.combine([pa, pb]), pc])
        right = op.combine([pa, op.combine([pb, pc])])
        assert op.finalize(left) == pytest.approx(op.finalize(right))
        assert left.source_count == right.source_count == 5


class TestSourceCounts:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: o.name)
    def test_counts_add_up(self, op):
        p1 = op.map_partial(chunk_of([1.0, 2.0, 3.0]))
        p2 = op.map_partial(chunk_of([4.0]))
        assert op.combine([p1, p2]).source_count == 4

    def test_filter_preserves_source_count(self):
        """Filtered-out cells still count as sources — essential for the
        §3.2.1 annotation (an empty result is not missing data)."""
        op = ThresholdFilterOp(1e9)
        p = op.map_partial(chunk_of([1.0, 2.0]))
        assert p.source_count == 2
        assert op.finalize(p) == []

    def test_filter_empty_after_mask_partial_combines(self):
        """An empty-after-mask partial must still be a real Partial —
        empty state, full source count — and combining it with a
        non-empty one keeps both the values and the tally."""
        op = ThresholdFilterOp(5.0)
        empty = op.map_partial(chunk_of([1.0, 2.0, 3.0]))
        assert np.asarray(empty.state).size == 0
        assert empty.source_count == 3
        full = op.map_partial(chunk_of([9.0, 4.0]))
        combined = op.combine([empty, full])
        assert combined.source_count == 5
        assert op.finalize(combined) == [9.0]
        # Order of combination is irrelevant after the finalize sort.
        assert op.finalize(op.combine([full, empty])) == [9.0]


class TestPrunePredicates:
    def test_filter_gt_region_prunable_iff_max_below_threshold(self):
        pred = ThresholdFilterOp(5.0).prune_predicate()
        assert pred is not None
        assert pred.region_prunable(-10.0, 5.0)      # hi == t: nothing > t
        assert pred.region_prunable(-10.0, 4.9)
        assert not pred.region_prunable(-10.0, 5.1)  # some cell may match

    def test_filter_gt_pruned_key_value_is_fresh_empty_list(self):
        pred = ThresholdFilterOp(5.0).prune_predicate()
        a, b = pred.pruned_key_value(), pred.pruned_key_value()
        assert a == [] and b == []
        assert a is not b  # synthesized records must not share state

    def test_range_exceeds_is_not_prunable(self):
        """range_exceeds outputs a data-dependent variation for every
        key, so no region's contribution is a combine identity."""
        from repro.query.operators import RangeExceedsOp

        assert RangeExceedsOp(threshold=3.0).prune_predicate() is None

    def test_default_operators_have_no_predicate(self):
        for op in ALL_OPS:
            assert op.prune_predicate() is None


class TestErrors:
    def test_combine_empty_raises(self):
        with pytest.raises(QueryError):
            MeanOp().combine([])

    def test_median_of_nothing(self):
        with pytest.raises(QueryError):
            MedianOp().finalize(Partial(np.array([]), 0))


class TestRegistry:
    def test_lookup_all(self):
        for name in ["sum", "count", "mean", "min", "max", "stddev", "median"]:
            assert get_operator(name).name == name

    def test_filter_requires_threshold(self):
        with pytest.raises(QueryError):
            get_operator("filter_gt")
        assert get_operator("filter_gt", threshold=2.0).threshold == 2.0

    def test_unknown(self):
        with pytest.raises(QueryError):
            get_operator("mode")

    def test_unexpected_params(self):
        with pytest.raises(QueryError):
            get_operator("mean", threshold=1.0)

    def test_distributive_flags(self):
        assert MeanOp.distributive
        assert not MedianOp.distributive
