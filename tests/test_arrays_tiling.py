"""Unit and property tests for unit-shape tiling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.slab import Slab, slabs_cover
from repro.arrays.tiling import (
    grid_shape,
    iter_tiles,
    tile_count,
    tile_of_coord,
    tile_slab,
    tiles_overlapping,
)
from repro.errors import GeometryError, RankMismatchError

dims = st.integers(1, 8)


class TestGrid:
    def test_exact_division(self):
        assert grid_shape((6, 8), (2, 4)) == (3, 2)

    def test_ceil_division(self):
        assert grid_shape((7, 9), (2, 4)) == (4, 3)

    def test_count(self):
        assert tile_count((7, 9), (2, 4)) == 12

    def test_zero_tile_rejected(self):
        with pytest.raises(GeometryError):
            grid_shape((4,), (0,))

    def test_rank_mismatch(self):
        with pytest.raises(RankMismatchError):
            grid_shape((4, 4), (2,))


class TestTileOfCoord:
    def test_basic(self):
        assert tile_of_coord((5, 3), (2, 4)) == (2, 0)

    def test_origin(self):
        assert tile_of_coord((0, 0), (2, 4)) == (0, 0)


class TestTileSlab:
    def test_interior(self):
        assert tile_slab((1, 0), (2, 4), (7, 9)) == Slab((2, 0), (2, 4))

    def test_clipped_edge(self):
        assert tile_slab((3, 2), (2, 4), (7, 9)) == Slab((6, 8), (1, 1))

    def test_out_of_grid(self):
        with pytest.raises(GeometryError):
            tile_slab((4, 0), (2, 4), (7, 9))

    @given(st.data())
    @settings(max_examples=100)
    def test_tiles_partition_space(self, data):
        rank = data.draw(st.integers(1, 3))
        space = tuple(data.draw(st.integers(1, 7)) for _ in range(rank))
        tile = tuple(data.draw(st.integers(1, 4)) for _ in range(rank))
        slabs = [s for _, s in iter_tiles(space, tile)]
        assert slabs_cover(Slab.whole(space), slabs)

    @given(st.data())
    @settings(max_examples=100)
    def test_coord_in_its_tile(self, data):
        rank = data.draw(st.integers(1, 3))
        space = tuple(data.draw(st.integers(1, 7)) for _ in range(rank))
        tile = tuple(data.draw(st.integers(1, 4)) for _ in range(rank))
        coord = tuple(data.draw(st.integers(0, s - 1)) for s in space)
        tc = tile_of_coord(coord, tile)
        assert tile_slab(tc, tile, space).contains(coord)


class TestTilesOverlapping:
    def test_single_tile(self):
        got = tiles_overlapping(Slab((0, 0), (2, 2)), (4, 4))
        assert got == Slab((0, 0), (1, 1))

    def test_straddles(self):
        got = tiles_overlapping(Slab((3, 0), (2, 4)), (4, 4))
        assert got == Slab((0, 0), (2, 1))

    def test_empty_region(self):
        got = tiles_overlapping(Slab((0, 0), (0, 4)), (4, 4))
        assert got.is_empty

    @given(st.data())
    @settings(max_examples=100)
    def test_exactly_the_overlapping_tiles(self, data):
        rank = data.draw(st.integers(1, 3))
        space = tuple(data.draw(st.integers(2, 8)) for _ in range(rank))
        tile = tuple(data.draw(st.integers(1, 4)) for _ in range(rank))
        corner = tuple(data.draw(st.integers(0, s - 1)) for s in space)
        shape = tuple(
            data.draw(st.integers(1, s - c)) for s, c in zip(space, corner)
        )
        region = Slab(corner, shape)
        got = tiles_overlapping(region, tile)
        for tc, ts in iter_tiles(space, tile):
            if ts.overlaps(region):
                assert got.contains(tc), (tc, got)
            else:
                assert not got.contains(tc), (tc, got)
