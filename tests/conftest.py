"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Spill-sort validation is debug-gated in production; the suite pins it
# on so the sort invariant stays enforced (and fault-injection tests can
# rely on corrupted spills being rejected).  Must run before any repro
# import resolves the gate.
os.environ.setdefault("REPRO_CHECK_SPILLS", "1")

# Wall-clock deadlines make property tests flaky on loaded CI machines;
# example counts already bound the work.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp, MedianOp
from repro.scidata.generators import temperature_dataset, windspeed_dataset


@pytest.fixture(scope="session")
def temp_field():
    """Small temperature dataset (29 days -> 4 whole weeks truncated)."""
    return temperature_dataset(days=29, lat=10, lon=6)


@pytest.fixture(scope="session")
def temp_data(temp_field):
    return temp_field.arrays["temperature"].astype(np.float64)


@pytest.fixture(scope="session")
def weekly_mean_plan(temp_field):
    """Weekly mean, 5x lat down-sample — the paper's running example."""
    q = StructuralQuery(
        variable="temperature",
        extraction_shape=(7, 5, 1),
        operator=MeanOp(),
    )
    return q.compile(temp_field.metadata)


@pytest.fixture(scope="session")
def wind_field():
    """Small 4-d windspeed dataset (Query 1 shape, laptop scale)."""
    return windspeed_dataset(time=12, lat=12, lon=6, elevation=10, seed=3)


@pytest.fixture(scope="session")
def wind_median_plan(wind_field):
    q = StructuralQuery(
        variable="windspeed",
        extraction_shape=(2, 6, 3, 5),
        operator=MedianOp(),
    )
    return q.compile(wind_field.metadata)
