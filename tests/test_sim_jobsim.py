"""Simulator behaviour tests: barriers, scheduling, interference, and
the qualitative claims of paper §4 at reduced scale."""

import pytest

from repro.sim.cluster import ClusterConfig
from repro.sim.costmodel import MB, CostModel
from repro.sim.jobsim import ExecutionMode, simulate_job
from repro.sim.workload import (
    DependencyDistribution,
    ParitySkewDistribution,
    SimJobSpec,
    SimSplit,
    UniformDistribution,
)

SMALL_CLUSTER = ClusterConfig(num_nodes=4, hosts_per_rack=2)


def splits_for(n, out_frac=0.9, hosts=(), **kw):
    return tuple(
        SimSplit(
            index=i,
            read_bytes=16 * MB,
            cells=(16 * MB) // 4,
            output_bytes=int(16 * MB * out_frac),
            preferred_hosts=hosts,
            **kw,
        )
        for i in range(n)
    )


def contiguous_dist(nmaps, r):
    """Each map feeds the keyblocks covering its index range."""
    shares = []
    for i in range(nmaps):
        lo, hi = i / nmaps * r, (i + 1) / nmaps * r
        d = {}
        l = int(lo)
        while l < hi and l < r:
            d[l] = (min(hi, l + 1) - max(lo, l)) / (hi - lo)
            l += 1
        shares.append(d)
    return DependencyDistribution(shares, r)


def run(nmaps=32, r=4, mode=ExecutionMode.STOCK, dist=None, dense=False,
        seed=0, cost=None, cluster=SMALL_CLUSTER, out_bytes=None):
    dist = dist or UniformDistribution(r)
    spec = SimJobSpec(
        name="t",
        splits=splits_for(nmaps),
        distribution=dist,
        reduce_output_bytes=tuple(out_bytes or [1 * MB] * r),
        dense_output=dense,
    )
    return simulate_job(spec, cluster, cost, mode=mode, seed=seed)


class TestInvariants:
    def test_all_tasks_complete(self):
        tl = run()
        tl.validate()
        assert len(tl.map_finish) == 32
        assert len(tl.reduce_finish) == 4

    def test_global_barrier_holds(self):
        """No stock reduce begins processing before the last map ends."""
        tl = run(mode=ExecutionMode.STOCK)
        for p in tl.reduce_processing_start:
            assert p >= tl.last_map_finish

    def test_sidr_reduces_start_early(self):
        tl = run(mode=ExecutionMode.SIDR, dist=contiguous_dist(32, 4), dense=True)
        early = sum(
            1 for p in tl.reduce_processing_start if p < tl.last_map_finish
        )
        # 32 maps over 16 slots run in two waves; the reducers owning the
        # first wave's keyblocks (half of them) begin before the last map.
        assert early >= 2

    def test_sidr_never_starts_before_dependencies(self):
        nmaps, r = 32, 4
        dist = contiguous_dist(nmaps, r)
        tl = run(mode=ExecutionMode.SIDR, dist=dist, dense=True)
        for l in range(r):
            deps = dist.producers_of(l, nmaps)
            dep_done = max(tl.map_finish[m] for m in deps)
            assert tl.reduce_processing_start[l] >= dep_done

    def test_deterministic_given_seed(self):
        a = run(seed=3)
        b = run(seed=3)
        assert a.map_finish == b.map_finish
        assert a.reduce_finish == b.reduce_finish

    def test_jitter_changes_with_seed(self):
        cost = CostModel(jitter_sigma=0.2)
        a = run(seed=1, cost=cost)
        b = run(seed=2, cost=cost)
        assert a.map_finish != b.map_finish


class TestConnections:
    def test_stock_all_to_all(self):
        tl = run(nmaps=20, r=5, mode=ExecutionMode.STOCK)
        assert tl.shuffle_connections == 100

    def test_sidr_dependency_only(self):
        nmaps, r = 20, 5
        dist = contiguous_dist(nmaps, r)
        tl = run(nmaps=nmaps, r=r, mode=ExecutionMode.SIDR, dist=dist, dense=True)
        want = sum(len(dist.producers_of(l, nmaps)) for l in range(r))
        assert tl.shuffle_connections == want
        assert tl.shuffle_connections < 100


class TestSchedulingShapes:
    def test_sidr_first_result_much_earlier(self):
        stock = run(nmaps=64, r=8, mode=ExecutionMode.STOCK)
        sidr = run(
            nmaps=64, r=8, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(64, 8), dense=True,
        )
        assert sidr.first_result_time < 0.7 * stock.first_result_time

    def test_more_reducers_help_sidr_not_stock(self):
        sidr_small = run(
            nmaps=64, r=4, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(64, 4), dense=True,
        )
        sidr_big = run(
            nmaps=64, r=16, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(64, 16), dense=True,
            out_bytes=[1 * MB] * 16,
        )
        assert sidr_big.first_result_time < sidr_small.first_result_time
        stock_small = run(nmaps=64, r=4, mode=ExecutionMode.STOCK)
        stock_big = run(
            nmaps=64, r=16, mode=ExecutionMode.STOCK,
            out_bytes=[1 * MB] * 16,
        )
        # Global barrier: no first-result benefit from more reducers.
        assert stock_big.first_result_time >= 0.95 * stock_small.last_map_finish

    def test_locality_prefers_local_hosts(self):
        hosts = SMALL_CLUSTER.topology().host_names
        splits = tuple(
            SimSplit(
                index=i,
                read_bytes=16 * MB,
                cells=(16 * MB) // 4,
                output_bytes=1 * MB,
                preferred_hosts=(hosts[i % len(hosts)],),
                local_fraction_preferred=1.0,
                local_fraction_other=0.0,
            )
            for i in range(16)
        )
        spec = SimJobSpec(
            name="loc",
            splits=splits,
            distribution=UniformDistribution(2),
            reduce_output_bytes=(1 * MB, 1 * MB),
        )
        tl = simulate_job(spec, SMALL_CLUSTER, mode=ExecutionMode.STOCK)
        # With one preferred host per split and round-robin placement,
        # every split should be picked by its own host: all local reads,
        # so all map durations equal (no remote penalty).
        durations = [
            f - s for s, f in zip(tl.map_start, tl.map_finish)
        ]
        assert max(durations) - min(durations) < 1e-6


class TestSkewScenario:
    def test_parity_skew_slows_stock(self):
        """Figure 13's mechanism: half the reducers idle, half doubly
        loaded -> longer completion than balanced routing."""
        balanced = run(
            nmaps=32, r=8, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(32, 8), dense=True,
        )
        skewed = run(
            nmaps=32, r=8, mode=ExecutionMode.STOCK,
            dist=ParitySkewDistribution(8), dense=False,
        )
        assert skewed.makespan > balanced.makespan

    def test_starved_reducers_finish_instantly_after_barrier(self):
        tl = run(
            nmaps=32, r=8, mode=ExecutionMode.STOCK,
            dist=ParitySkewDistribution(8), dense=False,
        )
        finishes = sorted(tl.reduce_finish)
        # Two clusters of completion times: idle half then loaded half.
        assert finishes[3] < finishes[4]


class TestInterference:
    def test_stock_maps_slower_than_sidr_maps(self):
        """Copying reducers drag map IO in stock mode; SIDR's narrow copy
        windows barely do (the Figure 9 map-curve gap)."""
        stock = run(nmaps=64, r=8, mode=ExecutionMode.STOCK)
        sidr = run(
            nmaps=64, r=8, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(64, 8), dense=True,
        )
        assert stock.last_map_finish > sidr.last_map_finish

    def test_interference_disabled_equalizes(self):
        cost = CostModel(shuffle_interference=0.0)
        stock = run(nmaps=64, r=8, mode=ExecutionMode.STOCK, cost=cost)
        sidr = run(
            nmaps=64, r=8, mode=ExecutionMode.SIDR,
            dist=contiguous_dist(64, 8), dense=True, cost=cost,
        )
        assert stock.last_map_finish == pytest.approx(
            sidr.last_map_finish, rel=0.05
        )


class TestTimeline:
    def test_summary_fields(self):
        tl = run()
        s = tl.summary()
        assert s["makespan"] >= s["last_map_finish"]
        assert s["first_result"] <= s["makespan"]

    def test_curves_monotone(self):
        tl = run()
        mc = tl.map_completion_curve()
        rc = tl.reduce_completion_curve()
        assert list(mc.fractions) == sorted(mc.fractions)
        assert list(rc.fractions) == sorted(rc.fractions)
        assert rc.fractions[-1] == pytest.approx(1.0)

    def test_sampled_curve(self):
        import numpy as np

        tl = run()
        ts = np.linspace(0, tl.makespan, 10)
        vals = tl.sampled_reduce_curve(ts)
        assert vals[0] == 0.0
        assert vals[-1] == pytest.approx(1.0)


class TestStraggler:
    """A single straggling map task (5x input) — the mechanism behind
    Figure 12's variance claim, isolated."""

    def _straggler_splits(self, nmaps, straggler_idx):
        out = []
        for i in range(nmaps):
            factor = 5 if i == straggler_idx else 1
            out.append(
                SimSplit(
                    index=i,
                    read_bytes=16 * MB * factor,
                    cells=(16 * MB // 4) * factor,
                    output_bytes=int(16 * MB * 0.9) * factor,
                )
            )
        return tuple(out)

    def test_stock_straggler_delays_every_reduce(self):
        nmaps, r = 32, 8
        spec = SimJobSpec(
            name="strag",
            splits=self._straggler_splits(nmaps, straggler_idx=3),
            distribution=UniformDistribution(r),
            reduce_output_bytes=tuple([1 * MB] * r),
        )
        tl = simulate_job(spec, SMALL_CLUSTER, mode=ExecutionMode.STOCK)
        # Global barrier: no reduce can begin processing before the
        # straggler (the last map) ends.
        for p in tl.reduce_processing_start:
            assert p >= tl.last_map_finish

    def test_sidr_straggler_delays_only_dependents(self):
        nmaps, r = 32, 8
        straggler = 3
        dist = contiguous_dist(nmaps, r)
        spec = SimJobSpec(
            name="strag",
            splits=self._straggler_splits(nmaps, straggler),
            distribution=dist,
            reduce_output_bytes=tuple([1 * MB] * r),
            dense_output=True,
        )
        tl = simulate_job(spec, SMALL_CLUSTER, mode=ExecutionMode.SIDR)
        straggler_done = tl.map_finish[straggler]
        dependents = {
            l for l in range(r)
            if straggler in dist.producers_of(l, nmaps)
        }
        independents = set(range(r)) - dependents
        assert dependents and independents
        # Keyblocks not fed by the straggler finish before it does...
        early = [l for l in independents
                 if tl.reduce_finish[l] < straggler_done]
        assert len(early) >= len(independents) // 2
        # ...while its dependents necessarily wait for it.
        for l in dependents:
            assert tl.reduce_processing_start[l] >= straggler_done
