"""Unit tests for the span tracer (repro.obs.spans)."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import CAT_INSTANT, CAT_TASK, SpanTracer


class TestBasics:
    def test_start_end(self):
        tr = SpanTracer()
        s = tr.start_span("work")
        assert not s.finished
        tr.end_span(s)
        assert s.finished
        assert s.duration >= 0.0

    def test_duration_of_open_span_is_error(self):
        tr = SpanTracer()
        s = tr.start_span("open")
        with pytest.raises(ObservabilityError):
            _ = s.duration

    def test_double_end_is_error(self):
        tr = SpanTracer()
        s = tr.start_span("once")
        tr.end_span(s)
        with pytest.raises(ObservabilityError):
            tr.end_span(s)

    def test_end_clamped_to_start(self):
        """Clock skew between explicit timestamps must not produce
        negative durations."""
        tr = SpanTracer()
        s = tr.start_span("x", at=5.0)
        tr.end_span(s, at=3.0)
        assert s.end == 5.0
        assert s.duration == 0.0

    def test_ids_are_unique_and_ordered(self):
        tr = SpanTracer()
        ids = [tr.start_span(f"s{i}").span_id for i in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10


class TestHierarchy:
    def test_parent_linkage(self):
        tr = SpanTracer()
        job = tr.start_span("job")
        task = tr.start_span("map", parent=job, category=CAT_TASK)
        phase = tr.start_span("map.read", parent=task)
        assert job.parent_id is None
        assert task.parent_id == job.span_id
        assert phase.parent_id == task.span_id
        assert tr.children_of(job) == [task]
        assert tr.children_of(task) == [phase]

    def test_track_defaults_to_parent(self):
        tr = SpanTracer()
        task = tr.start_span("map", track="map 3")
        phase = tr.start_span("map.read", parent=task)
        assert phase.track == "map 3"

    def test_track_defaults_to_name_without_parent(self):
        tr = SpanTracer()
        assert tr.start_span("solo").track == "solo"


class TestContextManager:
    def test_clean_exit_finishes(self):
        tr = SpanTracer()
        with tr.span("outer") as s:
            pass
        assert s.finished

    def test_error_recorded_and_reraised(self):
        tr = SpanTracer()
        with pytest.raises(ValueError):
            with tr.span("boom") as s:
                raise ValueError("x")
        assert s.finished
        assert s.args["error"] == "ValueError"


class TestSyntheticClock:
    def test_explicit_timestamps(self):
        """The simulator replays timelines with synthetic ``at=`` times."""
        tr = SpanTracer()
        s = tr.start_span("sim", at=10.0)
        tr.end_span(s, at=25.5)
        assert s.start == 10.0
        assert s.duration == 15.5

    def test_instant(self):
        tr = SpanTracer()
        s = tr.instant("marker", at=3.0, args={"index": 1})
        assert s.category == CAT_INSTANT
        assert s.start == 3.0
        assert s.duration == 0.0


class TestQueries:
    def test_find_and_len(self):
        tr = SpanTracer()
        tr.start_span("a")
        b = tr.start_span("b")
        tr.end_span(b)
        assert len(tr) == 2
        assert [s.name for s in tr.find("b")] == ["b"]
        assert [s.name for s in tr.finished_spans()] == ["b"]


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        tr = SpanTracer()
        root = tr.start_span("job")
        n_threads, per_thread = 8, 50

        def work(t):
            for i in range(per_thread):
                with tr.span(f"t{t}.{i}", parent=root):
                    pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(tr) == 1 + n_threads * per_thread
        spans = tr.spans()
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)
        assert all(
            s.parent_id == root.span_id for s in spans if s is not root
        )
