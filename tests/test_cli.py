"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, _parse_shape
from repro.scidata.generators import temperature_dataset


@pytest.fixture(scope="module")
def ncfile(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.nc"
    temperature_dataset(days=29, lat=10, lon=8).write(path).close()
    return str(path)


class TestParseShape:
    def test_ok(self):
        assert _parse_shape("7,5,1") == (7, 5, 1)

    def test_bad(self):
        with pytest.raises(SystemExit):
            _parse_shape("7,x")


class TestInfo:
    def test_prints_cdl(self, ncfile, capsys):
        assert main(["info", ncfile]) == 0
        out = capsys.readouterr().out
        assert "time = 29;" in out
        assert "float temperature(time, lat, lon);" in out

    def test_missing_file_is_error(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.nc")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_weekly_mean(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "mean",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "3",
            ]
        )
        assert rc == 0
        cap = capsys.readouterr()
        lines = [l for l in cap.out.splitlines() if "\t" in l]
        assert len(lines) == 3
        key, value = lines[0].split("\t")
        assert key == "0,0,0"
        float(value)
        assert "early starts" in cap.err

    def test_filter_requires_threshold(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "filter_gt",
                "--reduces", "2",
            ]
        )
        assert rc == 1
        assert "threshold" in capsys.readouterr().err

    def test_strided_query(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "2,5,1",
                "--stride", "7,5,1",
                "--operator", "max",
                "--reduces", "2",
                "--splits", "4",
                "--limit", "0",
            ]
        )
        assert rc == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if "\t" in l]
        assert len(lines) == 4 * 2 * 8  # strided K'_T

    def test_columnar_plane_identical_output(self, ncfile, capsys):
        args = [
            "query", ncfile,
            "--variable", "temperature",
            "--extract", "7,5,1",
            "--operator", "mean",
            "--reduces", "3",
            "--splits", "6",
            "--limit", "0",
        ]
        assert main(args) == 0
        record_out = capsys.readouterr().out
        assert main(args + ["--data-plane", "columnar"]) == 0
        cap = capsys.readouterr()
        assert cap.out == record_out
        assert "columnar data plane" in cap.err

    def test_columnar_fallback_notice_for_holistic(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "median",
                "--reduces", "2",
                "--splits", "4",
                "--limit", "1",
                "--data-plane", "columnar",
            ]
        )
        assert rc == 0
        cap = capsys.readouterr()
        assert "columnar unavailable" in cap.err
        assert "record data plane" in cap.err

    def test_unknown_variable(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "nope",
                "--extract", "1,1,1",
            ]
        )
        assert rc == 1


class TestQueryTrace:
    def test_trace_is_valid_chrome_json(self, ncfile, tmp_path, capsys):
        """Acceptance: ``query --trace out.json`` writes a loadable
        Chrome trace_event document with complete span events."""
        trace = tmp_path / "out.json"
        metrics = tmp_path / "m.json"
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,2",
                "--operator", "mean",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "1",
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert xs
        for e in xs:
            assert {"pid", "tid", "ts", "dur", "name", "cat"} <= set(e)
        jobs = [e for e in xs if e["cat"] == "job"]
        assert len(jobs) == 1
        reduces = [e for e in xs if e["cat"] == "task" and e["name"] == "reduce"]
        assert len(reduces) == 3
        assert all(
            e["args"]["parent_id"] == jobs[0]["args"]["span_id"]
            for e in reduces
        )
        waits = [e for e in xs if e["name"] == "barrier.wait"]
        assert len(waits) == 3
        mdoc = json.loads(metrics.read_text())
        assert "counters" in mdoc

    def test_report_renders_saved_trace(self, ncfile, tmp_path, capsys):
        trace = tmp_path / "out.json"
        main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,2",
                "--operator", "mean",
                "--reduces", "2",
                "--splits", "4",
                "--limit", "0",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase totals:" in out
        assert "barrier waits (per reduce):" in out

    def test_report_missing_file_is_error(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_fig13_fast(self, capsys):
        rc = main(["simulate", "--figure", "13", "--scale", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "speedup" in out

    def test_fig12_fast(self, capsys):
        rc = main(["simulate", "--figure", "12", "--scale", "20", "--runs", "2"])
        assert rc == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_simulate_trace_export(self, tmp_path, capsys):
        trace = tmp_path / "sim.json"
        rc = main(
            ["simulate", "--figure", "13", "--scale", "20",
             "--trace", str(trace)]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert labels == {"stock", "SIDR"}
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== stock ==" in out and "== SIDR ==" in out


class TestTables:
    def test_partition_table(self, capsys):
        # Uses a smaller run through the real producer (full 6.48M keys
        # is the bench's job; here we only check the CLI wiring).
        rc = main(["tables", "--table", "partition"])
        assert rc == 0
        assert "partition+" in capsys.readouterr().out

    def test_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["tables", "--table", "99"])


class TestLiveFlags:
    def test_events_and_status_files(self, ncfile, tmp_path, capsys):
        ev_path = tmp_path / "events.jsonl"
        st_path = tmp_path / "status.json"
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "mean",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "2",
                "--events", str(ev_path),
                "--status", str(st_path),
            ]
        )
        assert rc == 0
        assert "events streamed" in capsys.readouterr().err

        from repro.obs.live import phase_totals, read_events

        events = read_events(ev_path)
        assert events[0].type == "job.start"
        assert events[-1].type == "job.finish"
        totals = phase_totals(events)
        assert totals["map"] == {"started": 6, "finished": 6}
        assert totals["reduce"] == {"started": 3, "finished": 3}
        assert totals["barriers_fired"] == 3

        status = json.loads(st_path.read_text())
        assert status["state"] == "done"
        assert status["progress"] == 1.0
        assert status["maps"]["done"] == 6
        assert status["events"]["dropped"] == 0

    def test_live_renders_on_non_tty(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "1",
                "--live",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        # The final frame always paints, even when the run outpaces the
        # (slowed-down) non-tty refresh interval.
        assert "maps" in err and "reduces" in err

    def test_slow_fault_straggler_reaches_stream(
        self, ncfile, tmp_path, capsys
    ):
        plan = {
            "seed": 0,
            "rules": [
                {"task": "map", "fault": "slow",
                 "indices": [3], "delay": 0.3}
            ],
        }
        pf = tmp_path / "slow.json"
        pf.write_text(json.dumps(plan))
        ev_path = tmp_path / "events.jsonl"
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "1",
                "--inject-faults", str(pf),
                "--events", str(ev_path),
            ]
        )
        assert rc == 0

        from repro.obs.live import phase_totals, read_events

        events = read_events(ev_path)
        totals = phase_totals(events)
        assert totals["stragglers"] >= 1
        flagged = [e for e in events if e.type == "task.straggler"]
        assert ("map", 3) in {(e.kind, e.index) for e in flagged}


class TestFaultFlags:
    def test_query_with_injected_faults(self, ncfile, tmp_path, capsys):
        plan = {
            "seed": 7,
            "rules": [
                {"task": "map", "fault": "transient",
                 "indices": [0, 2], "times": 1}
            ],
        }
        pf = tmp_path / "plan.json"
        pf.write_text(json.dumps(plan))
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "2",
                "--inject-faults", str(pf),
                "--max-attempts", "3",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "2 retries" in err and "2 injected" in err

    def test_query_bad_plan_is_error(self, ncfile, tmp_path, capsys):
        pf = tmp_path / "bad.json"
        pf.write_text('{"rules": [{"task": "gpu", "fault": "crash"}]}')
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--inject-faults", str(pf),
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_recovery_subcommand(self, ncfile, capsys):
        rc = main(
            [
                "recovery", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--reduces", "3",
                "--splits", "6",
                "--fail-reduce", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("persisted", "reexecute-all", "reexecute-deps"):
            assert name in out
        assert "NO" not in out  # every design recovered byte-identically


class TestVerify:
    def test_verify_small_sweep(self, capsys):
        rc = main(["verify", "--cases", "5", "--seed", "0", "--schedules", "2"])
        assert rc == 0
        cap = capsys.readouterr()
        assert "OK: 5 cases" in cap.out
        assert "verify.cases = 5" in cap.err
        assert "verify.mismatches = 0" in cap.err

    def test_verify_differential_only(self, capsys):
        rc = main(["verify", "--cases", "3", "--schedules", "0"])
        assert rc == 0
        assert "0 differential failures" in capsys.readouterr().out

    def test_verify_repro_replay(self, tmp_path, capsys):
        from repro.verify import FuzzCase, run_case, write_repro

        # a crash rule that cannot bind: succeeds everywhere, which is
        # a mismatch for an expects-failure case — a stable synthetic bug
        case = FuzzCase(
            seed=5, shape=(4, 2), extraction=(2, 2), stride=None,
            operator="sum", threshold=None, num_splits=2, reduces=1,
            fault_rules=({"task": "reduce", "fault": "crash",
                          "indices": [10]},),
        )
        result = run_case(case)
        path = write_repro(tmp_path, case, case, result)
        rc = main(["verify", "--repro", str(path)])
        assert rc == 1
        assert "still fails" in capsys.readouterr().out
