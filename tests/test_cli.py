"""Tests for the command-line interface."""

import pytest

from repro.cli import main, _parse_shape
from repro.scidata.generators import temperature_dataset


@pytest.fixture(scope="module")
def ncfile(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.nc"
    temperature_dataset(days=29, lat=10, lon=8).write(path).close()
    return str(path)


class TestParseShape:
    def test_ok(self):
        assert _parse_shape("7,5,1") == (7, 5, 1)

    def test_bad(self):
        with pytest.raises(SystemExit):
            _parse_shape("7,x")


class TestInfo:
    def test_prints_cdl(self, ncfile, capsys):
        assert main(["info", ncfile]) == 0
        out = capsys.readouterr().out
        assert "time = 29;" in out
        assert "float temperature(time, lat, lon);" in out

    def test_missing_file_is_error(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.nc")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_weekly_mean(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "mean",
                "--reduces", "3",
                "--splits", "6",
                "--limit", "3",
            ]
        )
        assert rc == 0
        cap = capsys.readouterr()
        lines = [l for l in cap.out.splitlines() if "\t" in l]
        assert len(lines) == 3
        key, value = lines[0].split("\t")
        assert key == "0,0,0"
        float(value)
        assert "early starts" in cap.err

    def test_filter_requires_threshold(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "7,5,1",
                "--operator", "filter_gt",
                "--reduces", "2",
            ]
        )
        assert rc == 1
        assert "threshold" in capsys.readouterr().err

    def test_strided_query(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "temperature",
                "--extract", "2,5,1",
                "--stride", "7,5,1",
                "--operator", "max",
                "--reduces", "2",
                "--splits", "4",
                "--limit", "0",
            ]
        )
        assert rc == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if "\t" in l]
        assert len(lines) == 4 * 2 * 8  # strided K'_T

    def test_unknown_variable(self, ncfile, capsys):
        rc = main(
            [
                "query", ncfile,
                "--variable", "nope",
                "--extract", "1,1,1",
            ]
        )
        assert rc == 1


class TestSimulate:
    def test_fig13_fast(self, capsys):
        rc = main(["simulate", "--figure", "13", "--scale", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "speedup" in out

    def test_fig12_fast(self, capsys):
        rc = main(["simulate", "--figure", "12", "--scale", "20", "--runs", "2"])
        assert rc == 0
        assert "Figure 12" in capsys.readouterr().out


class TestTables:
    def test_partition_table(self, capsys):
        # Uses a smaller run through the real producer (full 6.48M keys
        # is the bench's job; here we only check the CLI wiring).
        rc = main(["tables", "--table", "partition"])
        assert rc == 0
        assert "partition+" in capsys.readouterr().out

    def test_unknown_table(self):
        with pytest.raises(SystemExit):
            main(["tables", "--table", "99"])
