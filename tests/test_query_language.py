"""Unit tests for the structural query language and compiled plans."""

import numpy as np
import pytest

from repro.arrays.slab import Slab
from repro.errors import QueryError
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp, SumOp


class TestCompile:
    def test_paper_weekly_example(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=MeanOp(),
        )
        # 29 days -> 4 whole weeks; 10 lats -> 2 bands; 6 lons.
        plan = q.compile(temp_field.metadata)
        assert plan.intermediate_space == (4, 2, 6)
        assert plan.covered == Slab((0, 0, 0), (28, 10, 6))
        assert plan.num_intermediate_keys == 48
        assert plan.cells_per_instance == 35

    def test_unknown_variable(self, temp_field):
        q = StructuralQuery(
            variable="nope", extraction_shape=(1, 1, 1), operator=MeanOp()
        )
        with pytest.raises(Exception):
            q.compile(temp_field.metadata)

    def test_rank_mismatch(self, temp_field):
        q = StructuralQuery(
            variable="temperature", extraction_shape=(7, 5), operator=MeanOp()
        )
        with pytest.raises(QueryError):
            q.compile(temp_field.metadata)

    def test_subset_out_of_bounds(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=MeanOp(),
            subset=Slab((0, 0, 0), (100, 10, 6)),
        )
        with pytest.raises(QueryError):
            q.compile(temp_field.metadata)

    def test_subset_origin_shifts_translation(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=MeanOp(),
            subset=Slab((1, 0, 0), (28, 10, 6)),
        )
        plan = q.compile(temp_field.metadata)
        assert plan.intermediate_space == (4, 2, 6)
        assert plan.key_of((1, 0, 0)) == (0, 0, 0)
        assert plan.key_of((8, 0, 0)) == (1, 0, 0)

    def test_extraction_too_large(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(30, 5, 1),
            operator=MeanOp(),
        )
        with pytest.raises(QueryError):
            q.compile(temp_field.metadata)

    def test_strided_plan(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(2, 5, 1),
            operator=MeanOp(),
            stride=(7, 5, 1),
        )
        plan = q.compile(temp_field.metadata)
        # 29 days with 2-day instances every 7 days: days 0-1, 7-8, 14-15,
        # 21-22, 28-?29 incomplete -> 4
        assert plan.intermediate_space[0] == 4


class TestKeyTranslation:
    def test_key_of_none_outside_truncated_space(self, weekly_mean_plan):
        # Day 28 belongs to the dropped 5th partial week.
        assert weekly_mean_plan.key_of((28, 0, 0)) is None

    def test_instance_region(self, weekly_mean_plan):
        r = weekly_mean_plan.instance_region((1, 1, 2))
        assert r == Slab((7, 5, 2), (7, 5, 1))

    def test_expected_cells(self, weekly_mean_plan):
        assert weekly_mean_plan.expected_cells_for_key((0, 0, 0)) == 35

    def test_image_of(self, weekly_mean_plan):
        img = weekly_mean_plan.image_of(Slab((0, 0, 0), (8, 10, 6)))
        assert img == Slab((0, 0, 0), (2, 2, 6))


class TestOracle:
    def test_reference_output_weekly_mean(self, weekly_mean_plan, temp_data):
        out = weekly_mean_plan.reference_output(temp_data)
        assert len(out) == 48
        # Spot-check one instance against direct numpy.
        want = temp_data[7:14, 5:10, 2:3].mean()
        assert out[(1, 1, 2)] == pytest.approx(want)

    def test_oracle_shape_check(self, weekly_mean_plan):
        with pytest.raises(QueryError):
            weekly_mean_plan.reference_output(np.zeros((5, 5, 5)))

    def test_describe_mentions_pieces(self, weekly_mean_plan):
        text = weekly_mean_plan.describe()
        assert "mean" in text and "temperature" in text
        assert "[4, 2, 6]" in text


class TestPartialInstances:
    def test_keep_partial_instances(self, temp_field):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=SumOp(),
            keep_partial_instances=True,
        )
        plan = q.compile(temp_field.metadata)
        # ceil(29/7)=5 weeks, the last clipped to 1 day.
        assert plan.intermediate_space == (5, 2, 6)
        assert plan.expected_cells_for_key((4, 0, 0)) == 1 * 5 * 1

    def test_partial_oracle_consistent(self, temp_field, temp_data):
        q = StructuralQuery(
            variable="temperature",
            extraction_shape=(7, 5, 1),
            operator=SumOp(),
            keep_partial_instances=True,
        )
        plan = q.compile(temp_field.metadata)
        out = plan.reference_output(temp_data)
        want = temp_data[28:29, 0:5, 0:1].sum()
        assert out[(4, 0, 0)] == pytest.approx(float(want))
