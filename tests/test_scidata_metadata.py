"""Unit tests for dataset metadata."""

import numpy as np
import pytest

from repro.errors import DatasetError, FormatError
from repro.scidata.metadata import (
    Attribute,
    DatasetMetadata,
    Dimension,
    Variable,
    dtype_name,
    simple_metadata,
)


def sample_meta() -> DatasetMetadata:
    return DatasetMetadata(
        dimensions=(
            Dimension("time", 365),
            Dimension("lat", 250),
            Dimension("lon", 200),
        ),
        variables=(
            Variable(
                "temperature",
                "int",
                ("time", "lat", "lon"),
                attributes=(Attribute("units", "degF"),),
            ),
        ),
        attributes=(Attribute("source", "test"),),
    )


class TestDimension:
    def test_valid(self):
        assert Dimension("time", 10).length == 10

    def test_bad_name(self):
        with pytest.raises(DatasetError):
            Dimension("2bad", 10)

    def test_nonpositive_length(self):
        with pytest.raises(DatasetError):
            Dimension("x", 0)


class TestVariable:
    def test_unknown_dtype(self):
        with pytest.raises(DatasetError):
            Variable("v", "complex", ("x",))

    def test_no_dimensions(self):
        with pytest.raises(DatasetError):
            Variable("v", "int", ())

    def test_numpy_dtype(self):
        assert Variable("v", "double", ("x",)).numpy_dtype == np.dtype("float64")


class TestMetadata:
    def test_duplicate_dimension(self):
        with pytest.raises(DatasetError):
            DatasetMetadata(
                dimensions=(Dimension("x", 1), Dimension("x", 2)),
                variables=(),
            )

    def test_duplicate_variable(self):
        with pytest.raises(DatasetError):
            DatasetMetadata(
                dimensions=(Dimension("x", 2),),
                variables=(Variable("v", "int", ("x",)), Variable("v", "int", ("x",))),
            )

    def test_unknown_dimension_reference(self):
        with pytest.raises(DatasetError):
            DatasetMetadata(
                dimensions=(Dimension("x", 2),),
                variables=(Variable("v", "int", ("y",)),),
            )

    def test_variable_shape(self):
        assert sample_meta().variable_shape("temperature") == (365, 250, 200)

    def test_variable_cells_and_bytes(self):
        m = sample_meta()
        assert m.variable_cells("temperature") == 365 * 250 * 200
        assert m.variable_nbytes("temperature") == 365 * 250 * 200 * 4

    def test_unknown_lookups(self):
        m = sample_meta()
        with pytest.raises(DatasetError):
            m.variable("nope")
        with pytest.raises(DatasetError):
            m.dimension("nope")


class TestCdl:
    def test_matches_paper_figure1_style(self):
        cdl = sample_meta().to_cdl("example")
        assert "time = 365;" in cdl
        assert "lat = 250;" in cdl
        assert "lon = 200;" in cdl
        assert "int temperature(time, lat, lon);" in cdl

    def test_attributes_rendered(self):
        cdl = sample_meta().to_cdl()
        assert 'temperature:units = "degF";' in cdl
        assert ':source = "test";' in cdl


class TestRoundTrip:
    def test_dict_roundtrip(self):
        m = sample_meta()
        assert DatasetMetadata.from_dict(m.to_dict()) == m

    def test_malformed_dict(self):
        with pytest.raises(FormatError):
            DatasetMetadata.from_dict({"dimensions": "nope"})


class TestHelpers:
    def test_simple_metadata(self):
        m = simple_metadata("v", (2, 3), dtype="float")
        assert m.variable_shape("v") == (2, 3)
        assert m.variables[0].dimensions == ("dim0", "dim1")

    def test_simple_metadata_custom_names(self):
        m = simple_metadata("v", (2,), dim_names=("t",))
        assert m.dimensions[0].name == "t"

    def test_simple_metadata_name_length_mismatch(self):
        with pytest.raises(DatasetError):
            simple_metadata("v", (2, 3), dim_names=("t",))

    def test_dtype_name_roundtrip(self):
        assert dtype_name(np.dtype("float32")) == "float"
        with pytest.raises(FormatError):
            dtype_name(np.dtype("complex128"))
