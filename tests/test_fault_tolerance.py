"""Fault-injection, retry, and dependency-aware recovery tests.

Every test that executes a job runs under both engines by default; set
``REPRO_ENGINE_MODE=serial``, ``=threaded``, or ``=process`` to
restrict the matrix
(the CI workflow runs one job per mode).
"""

import os

import numpy as np
import pytest

from repro.errors import InjectedFaultError, JobFailedError, ReproError
from repro.faults import (
    WHEN_AFTER_FETCH,
    FaultKind,
    FaultRule,
    InjectionPlan,
    RecoveryModel,
)
from repro.mapreduce.engine import (
    DependencyBarrier,
    GlobalBarrier,
    LocalEngine,
    RetryPolicy,
)

from tests.test_mapreduce_engine import counting_job, ranged_job

#: ``process`` is opt-in (env), not in the default matrix: forking
#: a pool per test would triple suite wall-clock for bodies the
#: fuzz matrix already covers cross-process.
_ALL_MODES = ("serial", "threaded")
_KNOWN = ("serial", "threaded", "process")
_env = os.environ.get("REPRO_ENGINE_MODE", "")
MODES = (_env,) if _env in _KNOWN else _ALL_MODES

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def run(engine: LocalEngine, mode: str, job, barrier, **kwargs):
    if mode == "serial":
        return engine.run_serial(job, barrier, **kwargs)
    if mode == "process":
        return engine.run_processes(job, barrier, **kwargs)
    return engine.run_threaded(job, barrier, **kwargs)


def crash_rule(task, indices, **kw):
    return FaultRule(
        task=task, kind=FaultKind.CRASH, indices=frozenset(indices), **kw
    )


def transient_rule(task, indices, times=1, **kw):
    return FaultRule(
        task=task,
        kind=FaultKind.TRANSIENT,
        indices=frozenset(indices),
        times=times,
        **kw,
    )


def plan_of(*rules, seed=0):
    return InjectionPlan(rules=tuple(rules), seed=seed)


def clean_records(job_factory=counting_job, **kw):
    return LocalEngine().run_serial(job_factory(**kw), GlobalBarrier()).all_records()


# --------------------------------------------------------------------- #
# Crashes fail the job
# --------------------------------------------------------------------- #
class TestCrash:
    def test_serial_map_crash_raises_raw(self):
        engine = LocalEngine(faults=plan_of(crash_rule("map", {0})))
        with pytest.raises(InjectedFaultError):
            engine.run_serial(counting_job(), GlobalBarrier())

    def test_threaded_map_crash_wraps_all_errors(self):
        engine = LocalEngine(
            map_workers=1, faults=plan_of(crash_rule("map", {0}))
        )
        with pytest.raises(JobFailedError) as ei:
            engine.run_threaded(counting_job(), GlobalBarrier())
        assert len(ei.value.errors) == 1
        assert isinstance(ei.value.errors[0], InjectedFaultError)
        assert isinstance(ei.value.__cause__, InjectedFaultError)
        assert "count" in str(ei.value)

    @pytest.mark.parametrize("mode", MODES)
    def test_reduce_crash(self, mode):
        engine = LocalEngine(faults=plan_of(crash_rule("reduce", {1})))
        expected = (
            InjectedFaultError if mode == "serial" else JobFailedError
        )
        with pytest.raises(expected):
            run(engine, mode, counting_job(), GlobalBarrier())

    def test_fail_fast_cancels_undispatched_maps(self):
        """With one map worker, a crash on map 0 must prevent the queued
        maps from ever starting."""
        engine = LocalEngine(
            map_workers=1, faults=plan_of(crash_rule("map", {0}))
        )
        with pytest.raises(JobFailedError):
            engine.run_threaded(counting_job(), GlobalBarrier())

    def test_threaded_collects_concurrent_errors(self):
        """Two maps crash while both are in flight: JobFailedError must
        carry BOTH errors, not just the first."""
        rules = (
            FaultRule(
                task="map",
                kind=FaultKind.SLOW,
                indices=frozenset({0, 1}),
                delay=0.25,
            ),
            crash_rule("map", {0, 1}),
        )
        engine = LocalEngine(map_workers=2, faults=plan_of(*rules))
        with pytest.raises(JobFailedError) as ei:
            engine.run_threaded(counting_job(), GlobalBarrier())
        assert len(ei.value.errors) == 2
        assert all(isinstance(e, InjectedFaultError) for e in ei.value.errors)

    def test_job_failed_error_is_repro_error(self):
        assert issubclass(JobFailedError, ReproError)


# --------------------------------------------------------------------- #
# Transient faults are retried to success
# --------------------------------------------------------------------- #
class TestRetry:
    @pytest.mark.parametrize("mode", MODES)
    def test_transient_map_retried_byte_identical(self, mode):
        engine = LocalEngine(
            retry=FAST_RETRY,
            faults=plan_of(transient_rule("map", {0, 3})),
        )
        res = run(engine, mode, counting_job(), GlobalBarrier())
        assert res.all_records() == clean_records()
        assert res.counters.get("task.retries") == 2
        assert res.counters.get("faults.injected") == 2

    @pytest.mark.parametrize("mode", MODES)
    def test_transient_reduce_retried(self, mode):
        engine = LocalEngine(
            retry=FAST_RETRY,
            faults=plan_of(transient_rule("reduce", {2})),
        )
        res = run(engine, mode, counting_job(), GlobalBarrier())
        assert res.all_records() == clean_records()

    @pytest.mark.parametrize("mode", MODES)
    def test_retry_exhaustion_fails_job(self, mode):
        engine = LocalEngine(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=plan_of(transient_rule("map", {1}, times=5)),
        )
        expected = (
            InjectedFaultError if mode == "serial" else JobFailedError
        )
        with pytest.raises(expected):
            run(engine, mode, counting_job(), GlobalBarrier())

    @pytest.mark.parametrize("mode", MODES)
    def test_corrupt_spill_detected_and_retried(self, mode):
        """A corrupted spill trips the store's sortedness validation; the
        retry produces a clean spill."""
        engine = LocalEngine(
            retry=FAST_RETRY,
            faults=plan_of(
                FaultRule(
                    task="map",
                    kind=FaultKind.CORRUPT_SPILL,
                    indices=frozenset({2}),
                )
            ),
        )
        res = run(engine, mode, counting_job(), GlobalBarrier())
        assert res.all_records() == clean_records()
        assert res.counters.get("task.retries") >= 1

    @pytest.mark.parametrize("mode", MODES)
    def test_slow_task_still_correct(self, mode):
        engine = LocalEngine(
            faults=plan_of(
                FaultRule(
                    task="map",
                    kind=FaultKind.SLOW,
                    indices=frozenset({0}),
                    delay=0.05,
                )
            )
        )
        res = run(engine, mode, counting_job(), GlobalBarrier())
        assert res.all_records() == clean_records()
        assert res.counters.get("task.retries") == 0

    def test_failure_budget_stops_retrying(self):
        engine = LocalEngine(
            retry=RetryPolicy(
                max_attempts=10, backoff_base=0.0, failure_budget=2
            ),
            faults=plan_of(transient_rule("map", {0}, times=100)),
        )
        with pytest.raises(InjectedFaultError):
            engine.run_serial(counting_job(), GlobalBarrier())
        # budget=2: attempts 1 and 2 fail, then the run stops.

    @pytest.mark.parametrize("mode", MODES)
    def test_attempt_log_records_failures(self, mode):
        engine = LocalEngine(
            retry=FAST_RETRY, faults=plan_of(transient_rule("map", {0}))
        )
        res = run(engine, mode, counting_job(), GlobalBarrier())
        map0 = [a for a in res.attempts if a.kind == "map" and a.index == 0]
        assert [a.outcome for a in map0] == ["failed", "ok"]
        assert map0[0].attempt == 0 and map0[1].attempt == 1
        assert map0[0].error == "InjectedFaultError"

    def test_backoff_deterministic_and_capped(self):
        pol = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_cap=0.3)
        d1 = pol.backoff("map", 0, 1)
        assert d1 == pol.backoff("map", 0, 1)
        assert 0.0 < d1 <= 0.2
        assert pol.backoff("map", 0, 4) <= 0.3
        assert pol.backoff("map", 1, 1) != d1


# --------------------------------------------------------------------- #
# Dependency-aware reduce recovery (paper §6)
# --------------------------------------------------------------------- #
class TestRecovery:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize(
        "model,reexec",
        [
            (RecoveryModel.PERSISTED, 0),
            (RecoveryModel.REEXECUTE_ALL, 8),
            (RecoveryModel.REEXECUTE_DEPS, 2),
        ],
    )
    def test_reduce_recovery_per_model(self, mode, model, reexec):
        """Reduce 1 fails after consuming its fetched input; recovery
        re-runs exactly the maps the model requires (its dependency set
        I_l = {2, 3} under REEXECUTE_DEPS)."""
        job, deps = ranged_job()
        engine = LocalEngine(
            retry=FAST_RETRY,
            recovery=model,
            faults=plan_of(
                transient_rule("reduce", {1}, when=WHEN_AFTER_FETCH)
            ),
        )
        res = run(engine, mode, job, DependencyBarrier(deps))
        clean_job, _ = ranged_job()
        assert res.all_records() == (
            LocalEngine().run_serial(clean_job, GlobalBarrier()).all_records()
        )
        got = res.counters.get("recovery.maps_reexecuted")
        if mode != "serial" and model is RecoveryModel.REEXECUTE_ALL:
            # Concurrent modes: re-running every map can invalidate
            # other in-flight reduces (fetch consumed their input),
            # whose recovery adds to the counter — a lower bound is the
            # stable assertion.
            assert got >= reexec
        else:
            assert got == reexec
        if model is RecoveryModel.REEXECUTE_DEPS:
            assert reexec == len(deps[1]) < job.num_map_tasks

    @pytest.mark.parametrize("mode", MODES)
    def test_every_single_failure_is_byte_identical(self, mode):
        """Property-style sweep: for EVERY task, a single transient
        failure of that task yields output byte-identical to the
        fault-free run."""
        job, deps = ranged_job()
        clean = LocalEngine().run_serial(job, GlobalBarrier()).all_records()
        cases = [("map", i, RecoveryModel.PERSISTED) for i in range(8)]
        cases += [
            ("reduce", l, RecoveryModel.REEXECUTE_DEPS) for l in range(4)
        ]
        for task, idx, model in cases:
            when = WHEN_AFTER_FETCH if task == "reduce" else "start"
            engine = LocalEngine(
                retry=FAST_RETRY,
                recovery=model,
                faults=plan_of(transient_rule(task, {idx}, when=when)),
            )
            job2, deps2 = ranged_job()
            res = run(engine, mode, job2, DependencyBarrier(deps2))
            assert res.all_records() == clean, (task, idx, model)

    @pytest.mark.parametrize("mode", MODES)
    def test_acceptance_quarter_of_maps_fail(self, mode):
        """ISSUE acceptance: transient faults on 25% of maps, retried,
        byte-identical output; under REEXECUTE_DEPS a reduce failure
        re-executes only |I_l| < num_maps maps."""
        job, deps = ranged_job()
        clean = LocalEngine().run_serial(job, GlobalBarrier()).all_records()
        engine = LocalEngine(
            retry=FAST_RETRY,
            faults=plan_of(
                FaultRule(
                    task="map", kind=FaultKind.TRANSIENT, fraction=0.25
                ),
                seed=11,
            ),
        )
        res = run(engine, mode, job, DependencyBarrier(deps))
        assert res.all_records() == clean
        assert res.counters.get("task.retries") == 2  # 25% of 8 maps

        job2, deps2 = ranged_job()
        engine2 = LocalEngine(
            retry=FAST_RETRY,
            recovery=RecoveryModel.REEXECUTE_DEPS,
            faults=plan_of(
                transient_rule("reduce", {1}, when=WHEN_AFTER_FETCH)
            ),
        )
        res2 = run(engine2, mode, job2, DependencyBarrier(deps2))
        assert res2.all_records() == clean
        assert (
            0
            < res2.counters.get("recovery.maps_reexecuted")
            < job2.num_map_tasks
        )

    def test_early_results_never_retracted(self):
        """Results delivered through on_reduce_complete before a late
        crash must be final: fired once, identical to the clean run."""
        job, deps = ranged_job()
        clean = LocalEngine().run_serial(job, GlobalBarrier()).outputs
        delivered = {}

        def deliver(p, records):
            assert p not in delivered, "partition delivered twice"
            delivered[p] = list(records)

        engine = LocalEngine(faults=plan_of(crash_rule("map", {7})))
        with pytest.raises(InjectedFaultError):
            engine.run_serial(
                job, DependencyBarrier(deps), on_reduce_complete=deliver
            )
        # Reduces 0..2 depend only on maps 0..5 and fired before map 7.
        assert set(delivered) == {0, 1, 2}
        for p, records in delivered.items():
            assert records == clean[p]

    def test_early_results_never_retracted_threaded(self):
        job, deps = ranged_job()
        clean = LocalEngine().run_serial(job, GlobalBarrier()).outputs
        seen = {}

        def deliver(p, records):
            assert p not in seen, "partition delivered twice"
            seen[p] = list(records)

        engine = LocalEngine(
            map_workers=1, faults=plan_of(crash_rule("map", {7}))
        )
        with pytest.raises(JobFailedError):
            engine.run_threaded(
                job, DependencyBarrier(deps), on_reduce_complete=deliver
            )
        for p, records in seen.items():
            assert records == clean[p]


# --------------------------------------------------------------------- #
# Zone-map pruning composes with retry and dependency-aware recovery
# --------------------------------------------------------------------- #
def pruned_filter_job(data_plane="record", prune=True):
    """A filter_gt job whose zone map prunes 4 of 6 splits.

    Hot rows live only in the first and last extraction instances, so
    splits 1..4 are provably all-below-threshold: their keys are
    synthesized ([]) rather than computed.  Fault indices below bind to
    the *surviving* split population (2 maps after pruning).
    """
    from repro.query.language import StructuralQuery
    from repro.query.operators import ThresholdFilterOp
    from repro.query.splits import slice_splits
    from repro.scidata.metadata import DatasetMetadata, Dimension, Variable
    from repro.scidata.zonemaps import build_zone_map
    from repro.sidr.planner import build_sidr_job

    rng = np.random.default_rng(7)
    data = rng.uniform(0.0, 1.0, size=(12, 8))
    data[1, :] = 50.0
    data[10, :] = 60.0
    meta = DatasetMetadata(
        dimensions=(Dimension("t", 12), Dimension("x", 8)),
        variables=(Variable("v", "double", ("t", "x")),),
    )
    plan = StructuralQuery(
        variable="v", extraction_shape=(2, 8), operator=ThresholdFilterOp(10.0)
    ).compile(meta)
    splits = slice_splits(plan, num_splits=6)
    zone_map = build_zone_map("v", data, tile_shape=(2, 8))
    job, barrier, sidr = build_sidr_job(
        plan, splits, 3, data,
        data_plane=data_plane, prune=prune, zone_map=zone_map,
    )
    return job, barrier, sidr


class TestPrunedPlanRecovery:
    """ISSUE satellite: pruning must compose with REEXECUTE_DEPS
    recovery — a re-executed map attempt over a pruned plan produces
    the same records (and digest) as the primary attempt."""

    def oracle_digest(self, data_plane):
        from repro.verify import canonicalize_records, records_digest

        job, barrier, _ = pruned_filter_job(data_plane, prune=False)
        res = LocalEngine().run_serial(job, barrier)
        return res.all_records(), records_digest(
            canonicalize_records(res.all_records())
        )

    @pytest.mark.parametrize("plane", ["record", "columnar"])
    @pytest.mark.parametrize("mode", MODES)
    def test_transient_map_on_pruned_plan(self, mode, plane):
        """Retried map over the pruned plan: byte-identical to the
        unpruned fault-free oracle, with synthesized keys intact."""
        from repro.verify import canonicalize_records, records_digest

        clean, digest = self.oracle_digest(plane)
        job, barrier, sidr = pruned_filter_job(plane)
        assert sidr.pruning is not None and sidr.pruning.num_pruned == 4
        assert job.num_map_tasks == 2
        engine = LocalEngine(
            retry=FAST_RETRY, faults=plan_of(transient_rule("map", {0}))
        )
        res = run(engine, mode, job, barrier)
        assert res.all_records() == clean
        assert records_digest(
            canonicalize_records(res.all_records())
        ) == digest
        assert res.counters.get("task.retries") == 1
        assert res.counters.get("plan.splits.pruned") == 4
        map0 = [a for a in res.attempts if a.kind == "map" and a.index == 0]
        assert [a.outcome for a in map0] == ["failed", "ok"]

    @pytest.mark.parametrize("plane", ["record", "columnar"])
    @pytest.mark.parametrize("mode", MODES)
    def test_reexecute_deps_on_pruned_plan(self, mode, plane):
        """A reduce that dies after consuming its input re-executes only
        its dependency set — which pruning has already shrunk to the
        surviving maps.  Partition 1 owns nothing but synthesized keys,
        so its I_l is empty; partition 0 still depends on map 0."""
        clean, _ = self.oracle_digest(plane)
        job, barrier, _ = pruned_filter_job(plane)
        assert barrier.dependencies_of(1) == frozenset()
        assert barrier.dependencies_of(0)
        engine = LocalEngine(
            retry=FAST_RETRY,
            recovery=RecoveryModel.REEXECUTE_DEPS,
            faults=plan_of(
                transient_rule("reduce", {0}, when=WHEN_AFTER_FETCH)
            ),
        )
        res = run(engine, mode, job, barrier)
        assert res.all_records() == clean
        reexec = res.counters.get("recovery.maps_reexecuted")
        assert 0 < reexec <= job.num_map_tasks
        assert reexec == len(barrier.dependencies_of(0))

    @pytest.mark.parametrize("mode", MODES)
    def test_every_single_failure_on_pruned_plan(self, mode):
        """Sweep: any one surviving task failing transiently leaves the
        pruned job's output byte-identical to the unpruned oracle."""
        clean, _ = self.oracle_digest("record")
        cases = [("map", i) for i in range(2)] + [
            ("reduce", l) for l in range(3)
        ]
        for task, idx in cases:
            when = WHEN_AFTER_FETCH if task == "reduce" else "start"
            engine = LocalEngine(
                retry=FAST_RETRY,
                recovery=RecoveryModel.REEXECUTE_DEPS,
                faults=plan_of(transient_rule(task, {idx}, when=when)),
            )
            job, barrier, _ = pruned_filter_job("record")
            res = run(engine, mode, job, barrier)
            assert res.all_records() == clean, (task, idx)


# --------------------------------------------------------------------- #
# Observability of retries
# --------------------------------------------------------------------- #
class TestRetryObservability:
    def test_retry_metrics_and_spans(self):
        engine = LocalEngine(
            retry=FAST_RETRY, faults=plan_of(transient_rule("map", {0}))
        )
        res = engine.run_serial(counting_job(), GlobalBarrier())
        m = res.obs.metrics
        assert m.counter("task.retries").value == 1
        assert m.counter("task.attempt").value >= 1
        assert m.histogram("task.retry.backoff").count == 1
        retry_spans = res.obs.tracer.find("task.retry")
        assert len(retry_spans) == 1
        assert retry_spans[0].args["attempt"] == 0
        attempt_spans = [
            s for s in res.obs.tracer.find("map") if s.args.get("attempt")
        ]
        assert len(attempt_spans) == 1
        assert attempt_spans[0].args["attempt"] == 1

    @pytest.mark.parametrize("mode", MODES)
    def test_recovery_metrics(self, mode):
        job, deps = ranged_job()
        engine = LocalEngine(
            retry=FAST_RETRY,
            recovery=RecoveryModel.REEXECUTE_DEPS,
            faults=plan_of(
                transient_rule("reduce", {1}, when=WHEN_AFTER_FETCH)
            ),
        )
        res = run(engine, mode, job, DependencyBarrier(deps))
        m = res.obs.metrics
        assert m.counter("recovery.maps_reexecuted").value == 2
        assert m.histogram("recovery.seconds").count == 1
