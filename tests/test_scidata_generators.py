"""Unit tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.scidata.generators import (
    normal_dataset,
    normal_field,
    planar_wave_field,
    temperature_dataset,
    windspeed_dataset,
)


class TestPlanarWave:
    def test_shape(self):
        f = planar_wave_field((4, 5, 6))
        assert f.shape == (4, 5, 6)

    def test_deterministic(self):
        a = planar_wave_field((5, 5), seed=3)
        b = planar_wave_field((5, 5), seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        a = planar_wave_field((5, 5), seed=3)
        b = planar_wave_field((5, 5), seed=4)
        assert not np.array_equal(a, b)

    def test_offset_amplitude(self):
        f = planar_wave_field((50, 50), noise=0.0, offset=100.0, amplitude=1.0)
        assert 99 < f.mean() < 101

    def test_period_rank_mismatch(self):
        with pytest.raises(DatasetError):
            planar_wave_field((4, 4), periods=(1.0,))


class TestTemperature:
    def test_paper_default_dimensions(self):
        # Metadata matches Figure 1 exactly (no payload check at 365 size:
        # use small extents for that).
        f = temperature_dataset(days=8, lat=4, lon=4)
        cdl = f.metadata.to_cdl()
        assert "float temperature(time, lat, lon);" in cdl
        assert f.arrays["temperature"].shape == (8, 4, 4)

    def test_latitude_gradient(self):
        f = temperature_dataset(days=4, lat=50, lon=4, seed=1)
        t = f.arrays["temperature"].astype(np.float64)
        south = t[:, :5, :].mean()
        north = t[:, -5:, :].mean()
        assert south > north  # warmer toward lower latitude index

    def test_write_roundtrip(self, tmp_path):
        f = temperature_dataset(days=5, lat=4, lon=3)
        with f.write(tmp_path / "t.nc") as ds:
            assert np.allclose(ds.read_all("temperature"), f.arrays["temperature"])


class TestWindspeed:
    def test_metadata_only_paper_scale(self):
        f = windspeed_dataset(generate_payload=False)
        assert f.metadata.variable_shape("windspeed") == (7200, 360, 720, 50)
        assert f.arrays == {}

    def test_refuses_huge_payload(self):
        with pytest.raises(DatasetError):
            windspeed_dataset()  # paper scale with payload

    def test_small_payload_nonnegative(self):
        f = windspeed_dataset(time=4, lat=4, lon=4, elevation=4)
        assert (f.arrays["windspeed"] >= 0).all()


class TestNormal:
    def test_three_sigma_selectivity(self):
        f = normal_dataset((50, 50, 40), seed=5)
        arr = f.arrays["reading"].astype(np.float64)
        frac = float((arr > 3.0).mean())
        # ~0.135% for a one-sided 3-sigma threshold (paper says ~0.1%).
        assert 0.0005 < frac < 0.003

    def test_mean_std_controls(self):
        f = normal_field((100, 100), mean=5.0, std=2.0, seed=1)
        assert 4.8 < f.mean() < 5.2
        assert 1.9 < f.std() < 2.1
