"""Unit tests for the discrete-event core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        end = sim.run()
        assert log == ["a", "b", "c"]
        assert end == 3.0

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()

        def bad():
            sim.schedule_at(0.5, lambda: None)

        sim.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_clock_monotone(self):
        sim = Simulator()
        times = []
        for d in [5.0, 1.0, 3.0, 1.0]:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
