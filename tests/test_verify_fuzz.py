"""Differential fuzzer: oracle agreement, shrinking, repro files."""

import pytest

from repro.verify import (
    ENGINE_CONFIGS,
    OPERATOR_NAMES,
    FuzzCase,
    canonicalize_records,
    canonicalize_value,
    fuzz,
    generate_case,
    load_repro,
    oracle_records,
    records_digest,
    run_case,
    shrink_case,
    write_repro,
)


def base_case(operator, **kwargs):
    defaults = dict(
        seed=11,
        shape=(6, 4),
        extraction=(3, 2),
        stride=None,
        operator=operator,
        threshold=2.0 if operator in ("filter_gt", "range_exceeds") else None,
        num_splits=3,
        reduces=2,
    )
    defaults.update(kwargs)
    return FuzzCase(**defaults)


class TestOracle:
    @pytest.mark.parametrize("operator", OPERATOR_NAMES)
    def test_every_operator_matches_oracle(self, operator):
        """Engines × planes agree byte-identically with the brute-force
        oracle for every registered operator — including the holistic
        median/sort the columnar plane falls back on.  Prunable
        fault-free operators (filter_gt) additionally run the predicate
        leg: the same configurations with zone-map pruning forced on."""
        result = run_case(base_case(operator))
        assert result.ok, result.mismatch
        expected_legs = (
            2 * len(ENGINE_CONFIGS)
            if operator == "filter_gt"
            else len(ENGINE_CONFIGS)
        )
        assert len(result.outcomes) == expected_legs
        assert all(o.digest == result.oracle_digest for o in result.outcomes)

    def test_oracle_is_engine_independent(self):
        case = base_case("sum")
        plan, data = case.build()
        ref = oracle_records(plan, data)
        # spot-check one value against a plain numpy computation
        key, value = ref[0]
        region = data[0:3, 0:2]
        assert value == region.sum()

    def test_canonicalize_strips_numpy_types(self):
        import numpy as np

        v = canonicalize_value(np.float64(3.0))
        assert type(v) is float
        v = canonicalize_value(np.arange(3))
        assert v == [0, 1, 2]
        v = canonicalize_value({"b": np.int64(1), "a": 2})
        assert list(v.keys()) == ["a", "b"]

    def test_digest_is_order_insensitive(self):
        recs = [((1,), 2.0), ((0,), 1.0)]
        a = records_digest(canonicalize_records(recs))
        b = records_digest(canonicalize_records(reversed(recs)))
        assert a == b


class TestCases:
    def test_generation_is_deterministic(self):
        for i in range(10):
            assert generate_case(i, 3) == generate_case(i, 3)
        assert generate_case(0, 3) != generate_case(0, 4) or True  # seeds differ

    def test_json_round_trip(self):
        case = generate_case(4, 0)
        assert FuzzCase.from_json(case.to_json()) == case

    def test_generated_faults_always_bind(self):
        """Clamping must never leave a fault rule pointing at a task
        index outside the bound population (a crash that cannot fire
        would make an expects-failure case succeed)."""
        for i in range(60):
            case = generate_case(i, 0)
            for rule in case.fault_rules:
                n = case.num_splits if rule["task"] == "map" else case.reduces
                assert all(idx < n for idx in rule["indices"]), case.describe()

    def test_crash_case_fails_in_every_config(self):
        case = base_case(
            "sum",
            fault_rules=(
                {"task": "reduce", "fault": "crash", "indices": [0]},
            ),
        )
        assert case.expects_failure
        result = run_case(case)
        assert result.ok, result.mismatch
        assert all(o.status == "failed" for o in result.outcomes)
        assert all("InjectedFaultError" in o.error_types for o in result.outcomes)

    def test_transient_faults_recover_to_oracle_output(self):
        case = base_case(
            "mean",
            fault_rules=(
                {"task": "map", "fault": "transient", "indices": [0], "times": 1},
                {"task": "reduce", "fault": "transient", "indices": [1],
                 "times": 1, "when": "after-fetch"},
            ),
            recovery="reexecute-deps",
        )
        result = run_case(case)
        assert result.ok, result.mismatch


class TestPruningLeg:
    def test_prune_legs_cover_every_engine_config(self):
        """A fault-free filter_gt case runs each engine configuration
        twice — prune off and prune on — and every leg matches the
        oracle digest byte-identically."""
        case = base_case("filter_gt", threshold=100.0, tile=(2, 2))
        result = run_case(case)
        assert result.ok, result.mismatch
        pruned = [o for o in result.outcomes if o.prune]
        assert {(o.mode, o.data_plane) for o in pruned} == set(ENGINE_CONFIGS)
        assert all(o.config.endswith("/prune") for o in pruned)
        assert all(o.digest == result.oracle_digest for o in pruned)

    def test_fault_cases_skip_prune_legs(self):
        """Fault rules bind to split indices; pruning renumbers splits,
        so fault cases must not grow pruning legs."""
        case = base_case(
            "filter_gt",
            fault_rules=(
                {"task": "map", "fault": "transient", "indices": [0],
                 "times": 1},
            ),
        )
        result = run_case(case)
        assert result.ok, result.mismatch
        assert not any(o.prune for o in result.outcomes)

    def test_non_prunable_operators_skip_prune_legs(self):
        result = run_case(base_case("range_exceeds"))
        assert result.ok, result.mismatch
        assert not any(o.prune for o in result.outcomes)

    def test_tile_serializes_and_describes(self):
        case = base_case("filter_gt", tile=(3, 2))
        assert FuzzCase.from_json(case.to_json()) == case
        assert "tile=[3, 2]" in case.describe()
        assert FuzzCase.from_json(base_case("sum").to_json()).tile is None

    def test_operator_restriction_draws_only_those(self):
        for i in range(12):
            case = generate_case(i, 0, operators=("filter_gt",))
            assert case.operator == "filter_gt"


class TestShrinking:
    def failing_case(self):
        """A case whose 'must fail' crash rule cannot bind (index 10 of
        1 reduce): every engine succeeds, which is a differential
        mismatch by construction — a stable stand-in for a real bug."""
        return base_case(
            "sum",
            stride=(4, 3),
            num_splits=4,
            reduces=1,
            fault_rules=(
                {"task": "reduce", "fault": "crash", "indices": [10]},
            ),
        )

    def test_shrinker_minimizes_while_still_failing(self):
        case = self.failing_case()
        result = run_case(case)
        assert not result.ok
        shrunk, shrunk_result = shrink_case(case, result)
        assert not shrunk_result.ok
        # strictly simpler on every shrinkable axis
        assert shrunk.stride is None
        assert shrunk.num_splits == 1
        assert shrunk.volume <= case.volume

    def test_repro_file_round_trip(self, tmp_path):
        case = self.failing_case()
        result = run_case(case)
        path = write_repro(tmp_path, case, case, result, index=3)
        assert path.exists()
        loaded = load_repro(path)
        assert loaded == case
        replay = run_case(loaded)
        assert replay.mismatch == result.mismatch


class TestFuzzDriver:
    def test_25_cases_clean(self):
        """Tier-1 differential sweep: 25 seeded cases, four engine
        configurations each, two explored interleavings per case."""
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        report = fuzz(25, seed=0, schedules=2, metrics=m)
        assert report.ok, report.summary()
        assert report.num_cases == 25
        assert m.counter("verify.cases").value == 25
        assert m.counter("verify.mismatches").value == 0
        assert m.counter("verify.explorer.schedules").value == 50

    def test_failures_are_shrunk_and_persisted(self, tmp_path, monkeypatch):
        import importlib

        F = importlib.import_module("repro.verify.fuzz")
        bad = TestShrinking().failing_case()
        monkeypatch.setattr(F, "generate_case", lambda i, s, operators=None: bad)
        report = F.fuzz(1, seed=0, schedules=0, out_dir=tmp_path)
        assert not report.ok
        assert len(report.failures) == 1
        repro_path = report.failures[0].repro_path
        assert repro_path is not None and repro_path.exists()
        shrunk = load_repro(repro_path)
        assert shrunk.num_splits == 1
        assert not run_case(shrunk).ok


class TestServiceLeg:
    """Opt-in service legs: cases routed through the resident query
    service (in-process client) join the differential ladder when
    ``REPRO_VERIFY_ENGINES`` lists ``service``."""

    def test_service_legs_are_opt_in(self, monkeypatch):
        from repro.verify.fuzz import _engine_configs

        monkeypatch.delenv("REPRO_VERIFY_ENGINES", raising=False)
        assert ("service", "record") not in _engine_configs()
        monkeypatch.setenv("REPRO_VERIFY_ENGINES", "serial,service")
        configs = _engine_configs()
        assert ("serial", "record") in configs
        assert ("service", "record") in configs
        assert ("service", "columnar") in configs
        assert ("threaded", "record") not in configs

    def test_small_case_smoke_matches_oracle(self, monkeypatch):
        """Tier-1 smoke: a clean case, a crash case, and a prunable case
        all agree across the serial and service legs."""
        monkeypatch.setenv("REPRO_VERIFY_ENGINES", "serial,service")

        clean = run_case(base_case("mean"))
        assert clean.ok, clean.mismatch
        served = [o for o in clean.outcomes if o.mode == "service"]
        assert {o.data_plane for o in served} == {"record", "columnar"}
        assert all(o.digest == clean.oracle_digest for o in served)

        crash = run_case(base_case(
            "sum",
            fault_rules=(
                {"task": "reduce", "fault": "crash", "indices": [0]},
            ),
        ))
        assert crash.ok, crash.mismatch
        assert all(o.status == "failed" for o in crash.outcomes)

        pruned = run_case(base_case("filter_gt", tile=(3, 2)))
        assert pruned.ok, pruned.mismatch
        assert any(
            o.mode == "service" and o.prune for o in pruned.outcomes
        )

    def test_shrinker_preserves_the_service_path(self, monkeypatch):
        """Leg selection is environment-driven, so a shrunk candidate
        re-enters run_case with the service legs still active."""
        import importlib

        F = importlib.import_module("repro.verify.fuzz")
        monkeypatch.setenv("REPRO_VERIFY_ENGINES", "service")
        calls = []
        real = F._run_service_leg

        def spying(case, plane, *, prune=False):
            calls.append(case)
            return real(case, plane, prune=prune)

        monkeypatch.setattr(F, "_run_service_leg", spying)
        result = run_case(base_case("mean"))
        assert result.ok, result.mismatch
        assert len(calls) == 2  # both planes went through the service
        assert all(o.mode == "service" for o in result.outcomes)
