"""Hypothesis-driven invariants over randomized simulator runs.

For random cluster shapes, split counts, reducer counts, volumes and
execution modes, every run must satisfy the structural invariants the
figures depend on: completeness, phase ordering, barrier correctness and
connection accounting.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.cluster import ClusterConfig
from repro.sim.costmodel import MB, CostModel
from repro.sim.jobsim import ExecutionMode, simulate_job
from repro.sim.workload import (
    DependencyDistribution,
    SimJobSpec,
    SimSplit,
    UniformDistribution,
)


@st.composite
def random_sim_case(draw):
    nodes = draw(st.integers(1, 6))
    cluster = ClusterConfig(
        num_nodes=nodes,
        hosts_per_rack=draw(st.integers(1, max(1, nodes))),
        map_slots_per_node=draw(st.integers(1, 4)),
        reduce_slots_per_node=draw(st.integers(1, 3)),
    )
    nmaps = draw(st.integers(1, 40))
    r = draw(st.integers(1, 12))
    mb = draw(st.integers(1, 32))
    out_frac = draw(st.floats(0.0, 1.0))
    mode = draw(st.sampled_from(list(ExecutionMode)))
    jitter = draw(st.sampled_from([0.0, 0.1]))
    seed = draw(st.integers(0, 1000))
    splits = tuple(
        SimSplit(
            index=i,
            read_bytes=mb * MB,
            cells=(mb * MB) // 4,
            output_bytes=int(mb * MB * out_frac),
        )
        for i in range(nmaps)
    )
    if mode is ExecutionMode.SIDR:
        shares = []
        for i in range(nmaps):
            lo, hi = i / nmaps * r, (i + 1) / nmaps * r
            d = {}
            l = int(lo)
            while l < hi and l < r:
                d[l] = (min(hi, l + 1) - max(lo, l)) / (hi - lo)
                l += 1
            shares.append(d)
        dist = DependencyDistribution(shares, r)
    else:
        dist = UniformDistribution(r)
    spec = SimJobSpec(
        name="prop",
        splits=splits,
        distribution=dist,
        reduce_output_bytes=tuple([1 * MB] * r),
        dense_output=mode is ExecutionMode.SIDR,
    )
    return spec, cluster, mode, jitter, seed


@given(case=random_sim_case())
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_simulation_invariants(case):
    spec, cluster, mode, jitter, seed = case
    cost = CostModel(jitter_sigma=jitter)
    tl = simulate_job(spec, cluster, cost, mode=mode, seed=seed)
    tl.validate()

    # Completeness: every task ran, times strictly positive.
    assert len(tl.map_finish) == spec.num_maps
    assert len(tl.reduce_finish) == spec.num_reduces
    assert all(f > s for s, f in zip(tl.map_start, tl.map_finish))

    # Barrier correctness.
    if mode is ExecutionMode.STOCK:
        for p in tl.reduce_processing_start:
            assert p >= tl.last_map_finish - 1e-9
    else:
        for l in range(spec.num_reduces):
            deps = spec.distribution.producers_of(l, spec.num_maps)
            if deps:
                dep_done = max(tl.map_finish[m] for m in deps)
                assert tl.reduce_processing_start[l] >= dep_done - 1e-9

    # Connection accounting.
    if mode is ExecutionMode.STOCK:
        assert tl.shuffle_connections == spec.num_maps * spec.num_reduces
    else:
        want = sum(
            len(spec.distribution.producers_of(l, spec.num_maps))
            for l in range(spec.num_reduces)
        )
        assert tl.shuffle_connections == want

    # Slot capacity respected: at no completion instant do more maps
    # overlap than the cluster's total map slots.  (Check pairwise
    # overlap count at each map start.)
    cap = cluster.total_map_slots
    starts = sorted(zip(tl.map_start, tl.map_finish))
    for s, _f in starts:
        running = sum(1 for s2, f2 in starts if s2 <= s < f2)
        assert running <= cap

    # Curves: monotone, ending at 1.
    rc = tl.reduce_completion_curve()
    assert list(rc.fractions) == sorted(rc.fractions)
    assert rc.fractions[-1] == pytest.approx(1.0)


@given(case=random_sim_case())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_simulation_deterministic(case):
    spec, cluster, mode, jitter, seed = case
    cost = CostModel(jitter_sigma=jitter)
    a = simulate_job(spec, cluster, cost, mode=mode, seed=seed)
    b = simulate_job(spec, cluster, cost, mode=mode, seed=seed)
    assert a.map_finish == b.map_finish
    assert a.reduce_finish == b.reduce_finish
    assert a.shuffle_connections == b.shuffle_connections
