"""Coverage for engine extras: lifecycle hooks, callbacks, edge cases."""

import threading

import pytest

from repro.mapreduce.engine import (
    DependencyBarrier,
    GlobalBarrier,
    LocalEngine,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.partitioner import HashPartitioner, RangePartitioner
from repro.mapreduce.reducer import FunctionReducer, Reducer
from repro.mapreduce.splits import ByteRangeSplit


def make_splits(n):
    return [
        ByteRangeSplit(index=i, path="/f", start=i * 10, length=10)
        for i in range(n)
    ]


class SetupCleanupMapper(Mapper):
    """Mapper exercising setup() and a cleanup() that emits records."""

    def __init__(self, log):
        self._log = log
        self._seen = 0

    def setup(self):
        self._log.append("setup")

    def map(self, key, value):
        self._seen += 1
        yield (key, value)

    def cleanup(self):
        self._log.append("cleanup")
        yield ((999,), self._seen)  # trailing summary record


class SetupCleanupReducer(Reducer):
    def __init__(self, log):
        self._log = log

    def setup(self):
        self._log.append("r-setup")

    def reduce(self, key, values):
        yield (key, sum(values))

    def cleanup(self):
        self._log.append("r-cleanup")
        return iter(())


class TestLifecycle:
    def test_setup_cleanup_called_per_task(self):
        log = []

        def reader(split):
            yield ((split.index,), 1)

        job = JobConf(
            name="lc",
            splits=make_splits(3),
            reader_factory=reader,
            mapper_factory=lambda: SetupCleanupMapper(log),
            reducer_factory=lambda: SetupCleanupReducer(log),
            partitioner=HashPartitioner(),
            num_reduce_tasks=2,
        )
        res = LocalEngine().run_serial(job, GlobalBarrier())
        assert log.count("setup") == 3
        assert log.count("cleanup") == 3
        assert log.count("r-setup") == 2
        got = dict(res.all_records())
        # Three cleanup records with key (999,) summed together.
        assert got[(999,)] == 3


class TestReduceCompleteCallback:
    def _job(self, n_splits=8, n_reduces=4):
        def reader(split):
            yield ((split.index,), split.index)

        boundaries = [
            (n_splits * (i + 1)) // n_reduces for i in range(n_reduces)
        ]
        deps = {
            i: frozenset(
                range(0 if i == 0 else boundaries[i - 1], boundaries[i])
            )
            for i in range(n_reduces)
        }
        job = JobConf(
            name="cb",
            splits=make_splits(n_splits),
            reader_factory=reader,
            mapper_factory=__import__(
                "repro.mapreduce.mapper", fromlist=["IdentityMapper"]
            ).IdentityMapper,
            reducer_factory=lambda: FunctionReducer(
                lambda k, vals: [(k, sum(vals))]
            ),
            partitioner=RangePartitioner((n_splits,), boundaries),
            num_reduce_tasks=n_reduces,
            contact_all_maps=False,
        )
        return job, DependencyBarrier(deps)

    def test_serial_callback_fires_in_completion_order(self):
        job, barrier = self._job()
        seen = []
        LocalEngine().run_serial(
            job, barrier,
            on_reduce_complete=lambda p, recs: seen.append((p, len(recs))),
        )
        assert [p for p, _ in seen] == [0, 1, 2, 3]
        assert all(n == 2 for _, n in seen)

    def test_serial_callback_before_later_maps(self):
        """The callback delivers early results: partition 0's callback
        fires before split 7's map has run."""
        job, barrier = self._job()
        order = []
        original_reader = job.reader_factory

        def tracking_reader(split):
            order.append(("map", split.index))
            return original_reader(split)

        job.reader_factory = tracking_reader
        LocalEngine().run_serial(
            job, barrier,
            on_reduce_complete=lambda p, recs: order.append(("reduce", p)),
        )
        assert order.index(("reduce", 0)) < order.index(("map", 7))

    def test_threaded_callback_thread_safe(self):
        job, barrier = self._job(n_splits=16, n_reduces=8)
        lock = threading.Lock()
        seen = []

        def cb(p, recs):
            with lock:
                seen.append(p)

        LocalEngine(map_workers=4, reduce_workers=3).run_threaded(
            job, barrier, on_reduce_complete=cb
        )
        assert sorted(seen) == list(range(8))


class TestEngineValidation:
    def test_bad_worker_counts(self):
        from repro.errors import JobConfigError

        with pytest.raises(JobConfigError):
            LocalEngine(map_workers=0)
        with pytest.raises(JobConfigError):
            LocalEngine(reduce_workers=0)

    def test_partitioner_out_of_range_detected(self):
        from repro.errors import ShuffleError
        from repro.mapreduce.mapper import IdentityMapper
        from repro.mapreduce.partitioner import Partitioner

        class Broken(Partitioner):
            def partition(self, key, n):
                return n + 5

        def reader(split):
            yield ((0,), 1)

        job = JobConf(
            name="bad",
            splits=make_splits(1),
            reader_factory=reader,
            mapper_factory=IdentityMapper,
            reducer_factory=lambda: FunctionReducer(lambda k, v: []),
            partitioner=Broken(),
            num_reduce_tasks=2,
        )
        with pytest.raises(ShuffleError):
            LocalEngine().run_serial(job, GlobalBarrier())

    def test_empty_dependency_map_rejected(self):
        from repro.errors import JobConfigError

        with pytest.raises(JobConfigError):
            DependencyBarrier({})
