"""Tests for output committing and assembly (§4.4 productionized)."""

import numpy as np
import pytest

from repro.errors import DatasetError, QueryError
from repro.mapreduce.engine import LocalEngine
from repro.query.splits import slice_splits
from repro.sidr.output import (
    assemble_output,
    commit_sidr_output,
    commit_stock_output,
)
from repro.sidr.planner import build_sidr_job


@pytest.fixture(scope="module")
def finished_job(weekly_mean_plan):
    import repro.scidata.generators as gen

    field = gen.temperature_dataset(days=29, lat=10, lon=6, seed=21)
    data = field.arrays["temperature"].astype(np.float64)
    splits = slice_splits(weekly_mean_plan, num_splits=6)
    job, barrier, plan = build_sidr_job(weekly_mean_plan, splits, 4, data)
    res = LocalEngine().run_serial(job, barrier)
    oracle = weekly_mean_plan.reference_output(data)
    return plan, res, oracle


@pytest.fixture(scope="module")
def big_finished_job():
    """A job with a big enough output space (5,760 keys) that file sizes
    reflect data, not headers."""
    import repro.scidata.generators as gen
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp

    field = gen.temperature_dataset(days=57, lat=30, lon=48, seed=22)
    data = field.arrays["temperature"].astype(np.float64)
    q = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 1), operator=MeanOp()
    )
    qplan = q.compile(field.metadata)
    splits = slice_splits(qplan, num_splits=8)
    job, barrier, plan = build_sidr_job(qplan, splits, 4, data)
    res = LocalEngine().run_serial(job, barrier)
    return plan, res


class TestContiguousCommit:
    def test_commit_and_assemble_roundtrip(self, finished_job, tmp_path):
        plan, res, oracle = finished_job
        report = commit_sidr_output(plan, res, tmp_path / "out")
        assert report.strategy == "contiguous"
        assert report.total_seeks == 0
        assert len(report.files) >= plan.num_reduce_tasks
        out = assemble_output(
            tmp_path / "out", plan.query_plan.intermediate_space
        )
        for k, want in oracle.items():
            assert out[k] == pytest.approx(want)

    def test_part_files_are_small(self, big_finished_job, tmp_path):
        plan, res = big_finished_job
        import os

        commit_sidr_output(plan, res, tmp_path / "small")
        total_cells = plan.query_plan.num_intermediate_keys
        sizes = [
            os.path.getsize(os.path.join(tmp_path / "small", f))
            for f in os.listdir(tmp_path / "small")
        ]
        # Together roughly the dense output plus small headers.
        assert sum(sizes) < total_cells * 8 * 1.3

    def test_missing_key_detected(self, finished_job, tmp_path):
        plan, res, _ = finished_job
        broken = res
        victim = sorted(broken.outputs)[0]
        saved = broken.outputs[victim]
        broken.outputs[victim] = saved[:-1]  # drop one record
        try:
            with pytest.raises(DatasetError):
                commit_sidr_output(plan, broken, tmp_path / "broken")
        finally:
            broken.outputs[victim] = saved

    def test_list_outputs_rejected(self, tmp_path):
        """Filter queries produce lists; the dense committer refuses."""
        from repro.bench.workloads import small_query2
        from repro.query.splits import slice_splits as ss

        field, qplan = small_query2(shape=(8, 8, 8), threshold_sigmas=1.0)
        data = field.arrays["reading"].astype(np.float64)
        splits = ss(qplan, num_splits=2)
        job, barrier, plan = build_sidr_job(qplan, splits, 2, data)
        res = LocalEngine().run_serial(job, barrier)
        with pytest.raises(QueryError):
            commit_sidr_output(plan, res, tmp_path / "lists")


class TestStockCommit:
    def test_sentinel_commit_costs(self, big_finished_job, tmp_path):
        plan, res = big_finished_job
        space = plan.query_plan.intermediate_space
        contig = commit_sidr_output(plan, res, tmp_path / "c")
        stock = commit_stock_output(space, res, tmp_path / "s")
        # Table 2's law on a real job: sentinel output is ~r times larger
        # and pays one seek per scattered record.
        assert stock.total_bytes > 3 * contig.total_bytes
        assert stock.total_seeks > 0


class TestAssembleValidation:
    def test_empty_dir(self, tmp_path):
        with pytest.raises(DatasetError):
            assemble_output(tmp_path, (2, 2))

    def test_gap_detected(self, finished_job, tmp_path):
        plan, res, _ = finished_job
        import os

        commit_sidr_output(plan, res, tmp_path / "gap")
        victim = sorted(os.listdir(tmp_path / "gap"))[0]
        os.unlink(tmp_path / "gap" / victim)
        with pytest.raises(DatasetError, match="uncovered"):
            assemble_output(
                tmp_path / "gap", plan.query_plan.intermediate_space
            )

    def test_overlap_detected(self, finished_job, tmp_path):
        plan, res, _ = finished_job
        import shutil

        commit_sidr_output(plan, res, tmp_path / "dup")
        files = sorted((tmp_path / "dup").glob("part-*.nc"))
        shutil.copy(files[0], tmp_path / "dup" / "part-99999-0.nc")
        with pytest.raises(DatasetError, match="overlaps"):
            assemble_output(
                tmp_path / "dup", plan.query_plan.intermediate_space
            )
