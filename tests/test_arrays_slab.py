"""Unit and property tests for Slab algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arrays.slab import Slab, bounding_box, slabs_cover, slabs_disjoint
from repro.errors import GeometryError, RankMismatchError


def slab_strategy(rank=None, max_extent=6, max_corner=6):
    r = st.just(rank) if rank else st.integers(1, 4)
    return r.flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, max_corner), min_size=n, max_size=n),
            st.lists(st.integers(0, max_extent), min_size=n, max_size=n),
        ).map(lambda cs: Slab(tuple(cs[0]), tuple(cs[1])))
    )


class TestConstruction:
    def test_basic(self):
        s = Slab((1, 2), (3, 4))
        assert s.corner == (1, 2)
        assert s.shape == (3, 4)
        assert s.end == (4, 6)
        assert s.volume == 12
        assert s.rank == 2

    def test_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            Slab((0,), (-1,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(RankMismatchError):
            Slab((0, 0), (1,))

    def test_from_extent(self):
        s = Slab.from_extent((1, 1), (4, 3))
        assert s == Slab((1, 1), (3, 2))

    def test_from_extent_inverted_clamps_empty(self):
        s = Slab.from_extent((5,), (2,))
        assert s.is_empty

    def test_whole(self):
        assert Slab.whole((3, 4)) == Slab((0, 0), (3, 4))

    def test_hashable(self):
        assert len({Slab((0,), (1,)), Slab((0,), (1,))}) == 1


class TestContains:
    def test_contains_coord(self):
        s = Slab((1, 1), (2, 2))
        assert s.contains((1, 1))
        assert s.contains((2, 2))
        assert not s.contains((3, 1))
        assert not s.contains((0, 1))

    def test_contains_slab(self):
        outer = Slab((0, 0), (10, 10))
        assert outer.contains_slab(Slab((2, 3), (4, 4)))
        assert not outer.contains_slab(Slab((8, 8), (4, 4)))

    def test_empty_contained_everywhere(self):
        assert Slab((0,), (3,)).contains_slab(Slab((100,), (0,)))


class TestIntersect:
    def test_overlap(self):
        a = Slab((0, 0), (4, 4))
        b = Slab((2, 2), (4, 4))
        assert a.intersect(b) == Slab((2, 2), (2, 2))

    def test_disjoint(self):
        a = Slab((0,), (2,))
        b = Slab((5,), (2,))
        assert a.intersect(b).is_empty
        assert not a.overlaps(b)

    def test_adjacent_not_overlapping(self):
        a = Slab((0,), (2,))
        b = Slab((2,), (2,))
        assert not a.overlaps(b)

    @given(slab_strategy(rank=3), slab_strategy(rank=3))
    def test_commutative_volume(self, a, b):
        assert a.intersect(b).volume == b.intersect(a).volume

    @given(slab_strategy(rank=2), slab_strategy(rank=2))
    def test_intersection_contained(self, a, b):
        i = a.intersect(b)
        if not i.is_empty:
            assert a.contains_slab(i)
            assert b.contains_slab(i)

    @given(slab_strategy(rank=2))
    def test_self_intersection_identity(self, a):
        assert a.intersect(a).volume == a.volume


class TestIteration:
    def test_iter_coords_order(self):
        s = Slab((1, 2), (2, 2))
        assert list(s.iter_coords()) == [(1, 2), (1, 3), (2, 2), (2, 3)]

    def test_iter_empty(self):
        assert list(Slab((0,), (0,)).iter_coords()) == []

    @given(slab_strategy(rank=3, max_extent=4))
    def test_iter_count_matches_volume(self, s):
        assert len(list(s.iter_coords())) == s.volume

    def test_as_slices(self):
        import numpy as np

        arr = np.arange(24).reshape(4, 6)
        s = Slab((1, 2), (2, 3))
        assert arr[s.as_slices()].shape == (2, 3)
        assert arr[s.as_slices()][0, 0] == arr[1, 2]

    def test_as_local_slices(self):
        import numpy as np

        arr = np.arange(24).reshape(4, 6)
        s = Slab((1, 2), (2, 3))
        local = s.as_local_slices((1, 0))
        assert arr[local][0, 0] == arr[0, 2]


class TestSplitAxis:
    def test_split_middle(self):
        s = Slab((0, 0), (4, 3))
        a, b = s.split_axis(0, 1)
        assert a == Slab((0, 0), (1, 3))
        assert b == Slab((1, 0), (3, 3))
        assert a.volume + b.volume == s.volume

    def test_split_boundary_gives_empty(self):
        s = Slab((2,), (3,))
        a, b = s.split_axis(0, 2)
        assert a.is_empty and b == s

    def test_split_outside_raises(self):
        with pytest.raises(GeometryError):
            Slab((0,), (3,)).split_axis(0, 5)

    def test_bad_axis_raises(self):
        with pytest.raises(GeometryError):
            Slab((0,), (3,)).split_axis(1, 0)


class TestTranslate:
    def test_translate_roundtrip(self):
        s = Slab((3, 4), (2, 2))
        assert s.translate((1, -1)).relative_to((1, -1)) == s


class TestHelpers:
    def test_bounding_box(self):
        bb = bounding_box([Slab((0, 0), (1, 1)), Slab((3, 4), (2, 1))])
        assert bb == Slab((0, 0), (5, 5))

    def test_bounding_box_empty_raises(self):
        with pytest.raises(GeometryError):
            bounding_box([])

    def test_disjoint_true(self):
        assert slabs_disjoint([Slab((0,), (2,)), Slab((2,), (2,))])

    def test_disjoint_false(self):
        assert not slabs_disjoint([Slab((0,), (3,)), Slab((2,), (2,))])

    def test_cover_exact(self):
        space = Slab((0, 0), (2, 4))
        parts = [Slab((0, 0), (2, 2)), Slab((0, 2), (2, 2))]
        assert slabs_cover(space, parts)

    def test_cover_gap(self):
        space = Slab((0,), (4,))
        assert not slabs_cover(space, [Slab((0,), (2,))])

    def test_cover_outside(self):
        space = Slab((0,), (4,))
        assert not slabs_cover(space, [Slab((0,), (4,)), Slab((4,), (1,))])
