"""Unit and property tests for partition+ (paper §3.1, Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.shape import volume
from repro.arrays.slab import Slab, slabs_cover
from repro.errors import PartitionError
from repro.sidr.partition_plus import (
    choose_unit_shape,
    default_skew_bound,
    partition_plus,
)

spaces = st.lists(st.integers(1, 8), min_size=1, max_size=4).map(tuple)


class TestUnitShape:
    def test_row_contiguous_form(self):
        # Full trailing extents, one partial dim, leading ones.
        assert choose_unit_shape((10, 10, 10), 100) == (1, 10, 10)
        assert choose_unit_shape((10, 10, 10), 50) == (1, 5, 10)
        assert choose_unit_shape((10, 10, 10), 5) == (1, 1, 5)

    def test_bound_larger_than_space(self):
        assert choose_unit_shape((3, 4), 1000) == (3, 4)

    def test_bound_one(self):
        assert choose_unit_shape((5, 5), 1) == (1, 1)

    def test_nonpositive_bound(self):
        with pytest.raises(PartitionError):
            choose_unit_shape((3,), 0)

    @given(spaces, st.integers(1, 200))
    def test_volume_within_bound(self, space, bound):
        unit = choose_unit_shape(space, bound)
        assert volume(unit) <= bound
        assert all(1 <= u <= s for u, s in zip(unit, space))

    @given(spaces, st.integers(1, 200))
    def test_row_contiguity_invariant(self, space, bound):
        """After the first dim with extent > 1 (scanning from dim 0),
        every later dim either fills the space or is preceded only by
        full dims — i.e. the form (1,...,1, partial, full,...,full)."""
        unit = choose_unit_shape(space, bound)
        state = "ones"
        for u, s in zip(unit, space):
            if state == "ones":
                if u == 1:
                    continue
                state = "tail"
                # the partial dim itself is fine
                continue
            assert u == s, (unit, space)

    def test_default_bound_at_least_one_row(self):
        assert default_skew_bound((3600, 10, 20, 5), 22) >= 1000


class TestPartitionPlus:
    def test_paper_query1_22(self):
        part = partition_plus((3600, 10, 20, 5), 22)
        assert part.num_blocks == 22
        part.validate()
        # 3600 row instances over 22 blocks: 163 or 164 each.
        sizes = [b.num_instances for b in part.blocks]
        assert set(sizes) <= {163, 164}
        # Larger blocks first, final block smallest.
        assert sizes[-1] == min(sizes)

    def test_cell_ranges_tile_space(self):
        part = partition_plus((7, 5), 3, skew_bound=5)
        assert part.blocks[0].cell_range[0] == 0
        assert part.blocks[-1].cell_range[1] == 35

    def test_too_many_reducers(self):
        with pytest.raises(PartitionError):
            partition_plus((4,), 10, skew_bound=1)

    def test_blocks_geometrically_cover(self):
        part = partition_plus((6, 4), 4, skew_bound=4)
        slabs = [s for b in part.blocks for s in b.slabs]
        assert slabs_cover(Slab.whole((6, 4)), slabs)

    @given(st.data())
    @settings(max_examples=120)
    def test_invariants_random(self, data):
        space = data.draw(spaces)
        vol = volume(space)
        r = data.draw(st.integers(1, min(vol, 12)))
        bound = data.draw(st.integers(1, vol))
        try:
            part = partition_plus(space, r, skew_bound=bound)
        except PartitionError:
            # fewer instances than reducers: legitimate rejection
            return
        part.validate()
        # 1. Exact cover of the keyspace.
        slabs = [s for b in part.blocks for s in b.slabs]
        assert slabs_cover(Slab.whole(space), slabs)
        # 2. Contiguity: each block is one contiguous cell range and the
        #    ranges are adjacent in order.
        for a, b in zip(part.blocks, part.blocks[1:]):
            assert a.cell_range[1] == b.cell_range[0]
        # 3. Skew bound: the paper's guarantee is in *instances* —
        #    leading blocks differ by at most one instance (validate()
        #    checks this).  Cell counts may differ more when edge tiles
        #    clip; when the unit shape divides the space evenly (the
        #    common case: unit = whole K' rows) the cell skew is also
        #    bounded by one unit volume.
        divides = all(s % u == 0 for s, u in zip(space, part.unit_shape))
        body = [b.num_keys for b in part.blocks[:-1]]
        if body and divides:
            assert max(body) - min(body) <= volume(part.unit_shape)
        # 4. The final block never exceeds the others.
        if body:
            assert part.blocks[-1].num_instances <= max(
                b.num_instances for b in part.blocks[:-1]
            )

    @given(st.data())
    @settings(max_examples=80)
    def test_block_lookup_consistent(self, data):
        space = data.draw(spaces)
        vol = volume(space)
        r = data.draw(st.integers(1, min(vol, 8)))
        try:
            part = partition_plus(space, r)
        except PartitionError:
            return
        idx = data.draw(st.integers(0, vol - 1))
        l = part.block_of_cell_index(idx)
        blk = part.blocks[l]
        assert blk.cell_range[0] <= idx < blk.cell_range[1]

    def test_max_skew_cells_bounded(self):
        part = partition_plus((3600, 10, 20, 5), 528)
        # Instance skew <= 1 -> cell skew <= unit volume (1000).
        assert part.max_skew_cells() <= volume(part.unit_shape)

    def test_matches_range_partitioner(self):
        """The boundaries drive a RangePartitioner that assigns every key
        to the block geometrically containing it."""
        from repro.mapreduce.partitioner import RangePartitioner

        space = (12, 5)
        part = partition_plus(space, 4, skew_bound=5)
        rp = RangePartitioner(space, part.cell_boundaries())
        for c in Slab.whole(space).iter_coords():
            assigned = rp.partition(c, 4)
            assert part.blocks[assigned].contains_key(c)
