"""Tests for the structure-oblivious byte-oriented reader."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query.byterange import (
    ByteOrientedRecordReader,
    ByteReadStats,
    RecordGeometry,
    byte_splits_for_variable,
    measure_amplification,
)
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp
from repro.query.recordreader import StructuralRecordReader
from repro.query.splits import slice_splits


@pytest.fixture(scope="module")
def ncpath(tmp_path_factory, ):
    from repro.scidata.generators import temperature_dataset

    path = tmp_path_factory.mktemp("bytes") / "t.nc"
    temperature_dataset(days=28, lat=10, lon=6, seed=3).write(path).close()
    return str(path)


@pytest.fixture(scope="module")
def plan(ncpath):
    from repro.scidata.dataset import open_dataset

    q = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 1), operator=MeanOp()
    )
    with open_dataset(ncpath) as ds:
        return q.compile(ds.metadata)


ROW_BYTES = 10 * 6 * 4  # one dim-0 row of float32


class TestGeometry:
    def test_record_layout(self, ncpath):
        geo = RecordGeometry.for_variable(ncpath, "temperature")
        assert geo.record_bytes == ROW_BYTES
        assert geo.num_records == 28

    def test_multi_row_records(self, ncpath):
        geo = RecordGeometry.for_variable(
            ncpath, "temperature", rows_per_record=7
        )
        assert geo.num_records == 4
        assert geo.record_bytes == 7 * ROW_BYTES

    def test_non_dividing_records_rejected(self, ncpath):
        with pytest.raises(QueryError):
            RecordGeometry.for_variable(
                ncpath, "temperature", rows_per_record=5
            )


class TestSplits:
    def test_cover_payload(self, ncpath):
        splits = byte_splits_for_variable(
            ncpath, "temperature", split_bytes=ROW_BYTES * 5
        )
        assert sum(s.length for s in splits) == 28 * ROW_BYTES

    def test_first_byte_rule_partitions_records(self, ncpath, plan):
        """Every record is owned by exactly one split."""
        splits = byte_splits_for_variable(
            ncpath, "temperature", split_bytes=ROW_BYTES * 5 + 13
        )
        owned = []
        for sp in splits:
            r = ByteOrientedRecordReader(ncpath, plan, sp)
            owned.append(r._record_range())
        covered = []
        for lo, hi in owned:
            covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(28))


class TestEquivalence:
    def test_same_intermediate_totals_as_coordinate_reader(self, ncpath, plan):
        splits_b = byte_splits_for_variable(
            ncpath, "temperature", split_bytes=ROW_BYTES * 5, rows_per_record=7
        )
        tot_b: dict = {}
        for sp in splits_b:
            for k, c in ByteOrientedRecordReader(
                ncpath, plan, sp, rows_per_record=7
            ):
                tot_b[k] = tot_b.get(k, 0) + c.source_count
        tot_c: dict = {}
        for sp in slice_splits(plan, num_splits=4):
            for k, c in StructuralRecordReader(ncpath, plan, sp):
                tot_c[k] = tot_c.get(k, 0) + c.source_count
        assert tot_b == tot_c

    def test_values_match_oracle(self, ncpath, plan):
        from repro.scidata.dataset import open_dataset

        with open_dataset(ncpath) as ds:
            data = ds.read_all("temperature").astype(np.float64)
        oracle = plan.reference_output(data)
        got: dict = {}
        for sp in byte_splits_for_variable(
            ncpath, "temperature", split_bytes=ROW_BYTES * 3
        ):
            for k, c in ByteOrientedRecordReader(ncpath, plan, sp):
                prev = got.get(k)
                part = plan.operator.map_partial(c)
                got[k] = (
                    part if prev is None else plan.operator.combine([prev, part])
                )
        for k, want in oracle.items():
            assert plan.operator.finalize(got[k]) == pytest.approx(want)


class TestCosts:
    def test_aligned_splits_stay_local(self, ncpath, plan):
        """Record-aligned splits pay no boundary IO."""
        stats = measure_amplification(
            ncpath, plan, split_bytes=ROW_BYTES * 7, rows_per_record=7
        )
        assert stats.remote_fraction == 0.0
        assert stats.amplification == pytest.approx(1.0)

    def test_unaligned_splits_pay_boundary_io(self, ncpath, plan):
        """Splits cutting records must reach into the next block —
        the measured form of the Hadoop baseline's locality loss."""
        stats = measure_amplification(
            ncpath, plan, split_bytes=ROW_BYTES * 5, rows_per_record=7
        )
        assert stats.remote_fraction > 0.3

    def test_larger_records_worse_locality(self, ncpath, plan):
        small = measure_amplification(
            ncpath, plan, split_bytes=ROW_BYTES * 5, rows_per_record=1
        )
        big = measure_amplification(
            ncpath, plan, split_bytes=ROW_BYTES * 5, rows_per_record=7
        )
        assert big.remote_fraction > small.remote_fraction

    def test_stats_accumulate(self, ncpath, plan):
        stats = ByteReadStats()
        splits = byte_splits_for_variable(
            ncpath, "temperature", split_bytes=ROW_BYTES * 4
        )
        for sp in splits[:2]:
            for _ in ByteOrientedRecordReader(ncpath, plan, sp, stats=stats):
                pass
        assert stats.split_bytes == 2 * ROW_BYTES * 4
        assert stats.bytes_read >= stats.split_bytes - 2 * ROW_BYTES
