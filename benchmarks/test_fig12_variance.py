"""Figure 12: variance in task completion over 10 jittered runs.

Paper (§4.2): "With SIDR, data dependencies are small(er) barriers, so
Reduce tasks display at least as much variance as the set of Map tasks
they depend on.  Increasing the number of Reduce tasks diminishes that
set (per Reduce task) and the probability of a Reduce task depending on
several abnormally long-running Map tasks" — 22 vs 88 reduce tasks,
averages and error bars over 10 runs.
"""

import pytest

from repro.bench.figures import fig12_variance
from repro.bench.report import format_series, format_table

COUNTS = (22, 88)


@pytest.fixture(scope="module")
def fig12():
    return fig12_variance(reduce_counts=COUNTS, runs=10, scale=1)


def test_fig12_benchmark(benchmark, record_report):
    result = benchmark.pedantic(
        fig12_variance,
        kwargs={"reduce_counts": COUNTS, "runs": 10, "scale": 1},
        rounds=1,
        iterations=1,
    )
    rows = []
    for r in COUNTS:
        s = result.summaries[f"SS-{r}"]
        rows.append(
            [
                f"SIDR r={r}",
                s["mean_first"],
                s["mean_makespan"],
                s["std_makespan"],
                s["max_pointwise_std"],
            ]
        )
    table = format_table(
        ["configuration", "mean first(s)", "mean total(s)",
         "std total(s)", "max pointwise std"],
        rows,
        title="Figure 12 — completion variance over 10 jittered runs",
    )
    series = format_series(
        result.curves, title="mean output availability over time"
    )
    record_report("fig12_variance", table + "\n\n" + series)
    assert result.summaries["SS-22"]["std_makespan"] > 0


def test_more_reducers_lower_variance(fig12):
    """More reduce tasks -> smaller per-task dependency sets -> less
    spread in the completion curve."""
    assert fig12.notes["max_std_88"] <= fig12.notes["max_std_22"] * 1.25


def test_mean_curves_monotone(fig12):
    for name, c in fig12.curves.items():
        assert list(c.fractions) == sorted(c.fractions), name


def test_error_bars_meaningful(fig12):
    """The jitter model produces non-degenerate spread at both counts."""
    for r in COUNTS:
        assert fig12.summaries[f"SS-{r}"]["max_pointwise_std"] > 0.005
