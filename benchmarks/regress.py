#!/usr/bin/env python3
"""Benchmark regression tracking against committed baselines.

Compares a fresh ``benchmarks/runall.py`` output directory against the
JSON baselines committed under ``benchmarks/baselines/``::

    python benchmarks/runall.py --out /tmp/bench
    python benchmarks/regress.py --results /tmp/bench [--update]

Each tracked metric carries its own tolerance band:

* **exact** — semantic invariants (maps re-executed, byte-identical
  outputs).  Any drift is a regression, full stop.
* **relative** — wall-clock and throughput numbers.  Bands are wide
  (machine noise dwarfs real regressions at this workload size) but
  catch order-of-magnitude cliffs: an accidental per-record span, a
  lock on the spill path, a quadratic fetch.
* **absolute** — ratios already near zero (tracing overhead), where a
  relative band would be meaningless.

Exit status is 0 when every metric is inside its band, 1 otherwise —
but the CI step that runs this is **non-gating**: the comparison table
is uploaded as an artifact so a human can tell noise from a cliff
before the baseline is ever tightened.

``--update`` rewrites the baselines from the fresh results and appends
a row to ``benchmarks/baselines/trajectory.json`` so the numbers'
history survives baseline refreshes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

BASELINE_DIR = Path(__file__).parent / "baselines"
RESULT_FILES = ("BENCH_throughput.json", "BENCH_recovery.json",
                "BENCH_speculation.json", "BENCH_pruning.json",
                "BENCH_parallel.json", "BENCH_service.json",
                "BENCH_obs.json")


@dataclass(frozen=True)
class Check:
    """One tracked metric: where it lives and how far it may drift."""

    file: str          # which BENCH_*.json
    path: str          # dotted path into the JSON, [i] indexes lists
    mode: str          # "exact" | "relative" | "absolute"
    tol: float = 0.0   # band width (relative fraction or absolute delta)


# Wall-clock bands are deliberately generous: these benchmarks run in
# hundreds of milliseconds, where CI-runner noise of 30-40% is routine.
# The point is catching 2-10x cliffs, not 5% wobbles.
CHECKS: tuple[Check, ...] = (
    # Data-plane throughput: semantics exact, speed within a wide band.
    Check("BENCH_throughput.json", "identical", "exact"),
    Check("BENCH_throughput.json", "cells", "exact"),
    Check("BENCH_throughput.json", "record.cells_per_sec", "relative", 0.60),
    Check("BENCH_throughput.json", "columnar.cells_per_sec", "relative", 0.60),
    Check("BENCH_throughput.json", "speedup", "relative", 0.60),
    # Recovery: re-execution counts are structural invariants of the
    # SIDR routing; the analytical model must keep predicting them.
    Check("BENCH_recovery.json", "models[0].maps_reexecuted", "exact"),
    Check("BENCH_recovery.json", "models[1].maps_reexecuted", "exact"),
    Check("BENCH_recovery.json", "models[2].maps_reexecuted", "exact"),
    Check("BENCH_recovery.json", "models[0].predicted_maps_reexecuted",
          "exact"),
    Check("BENCH_recovery.json", "models[1].predicted_maps_reexecuted",
          "exact"),
    Check("BENCH_recovery.json", "models[2].predicted_maps_reexecuted",
          "exact"),
    Check("BENCH_recovery.json", "models[0].output_ok", "exact"),
    Check("BENCH_recovery.json", "models[1].output_ok", "exact"),
    Check("BENCH_recovery.json", "models[2].output_ok", "exact"),
    # models[0] (persisted) recovers in ~0s — too degenerate to band.
    Check("BENCH_recovery.json", "models[2].measured_seconds", "relative",
          0.60),
    # Speculation: the hedge must rescue the hang (exact semantics) and
    # the rescued makespan must stay inside the acceptance envelope —
    # within_2x is the gate; the raw seconds get the usual wide band.
    Check("BENCH_speculation.json", "output_ok", "exact"),
    Check("BENCH_speculation.json", "within_2x", "exact"),
    Check("BENCH_speculation.json", "speculations", "exact"),
    Check("BENCH_speculation.json", "hang_speculation_seconds", "relative",
          0.60),
    # Zone-map pruning: byte-identity and split counts are structural
    # invariants; the low-selectivity speedup gate (>=5x) is exact as a
    # boolean, with the raw ratio in a wide band (the pruned runs are
    # milliseconds, so runner noise shows up amplified in the ratio).
    Check("BENCH_pruning.json", "identical", "exact"),
    Check("BENCH_pruning.json", "speedup_ok", "exact"),
    Check("BENCH_pruning.json", "sweep[0].splits_pruned", "exact"),
    Check("BENCH_pruning.json", "sweep[5].splits_pruned", "exact"),
    Check("BENCH_pruning.json", "sweep[0].record.speedup", "relative", 0.75),
    Check("BENCH_pruning.json", "sweep[5].record.seconds_full", "relative",
          0.60),
    # Process engine: byte-identity and the scaling gate are exact
    # booleans (``speedup_ok`` is vacuously true below 4 cores — the
    # result records ``cpu_count`` so a reader can tell which case a
    # baseline captured); raw seconds get the usual wide band.
    # Machine-shape fields (cpu_count, per-worker speedups) are *not*
    # tracked — they legitimately differ between baseline and CI boxes.
    Check("BENCH_parallel.json", "identical", "exact"),
    Check("BENCH_parallel.json", "speedup_ok", "exact"),
    Check("BENCH_parallel.json", "cells", "exact"),
    Check("BENCH_parallel.json", "threaded.seconds", "relative", 0.60),
    Check("BENCH_parallel.json", "scaling[0].seconds", "relative", 0.75),
    # Resident service: oracle byte-identity and the cached-faster-
    # than-cold gate are exact booleans.  The raw plan-cache speedup is
    # a ratio of sub-millisecond timings — far too noisy to band — so
    # only the cold planning cost and the sequential serving time get
    # the usual wide wall-clock bands.
    Check("BENCH_service.json", "identical", "exact"),
    Check("BENCH_service.json", "cached_faster", "exact"),
    Check("BENCH_service.json", "cells", "exact"),
    Check("BENCH_service.json", "jobs", "exact"),
    Check("BENCH_service.json", "plan.cold_ms", "relative", 0.75),
    Check("BENCH_service.json", "sequential_seconds", "relative", 0.75),
    # Observability: overhead ratios are near zero, so band them
    # absolutely — baseline 0.04 vs fresh 0.09 is fine; 0.25 is not.
    Check("BENCH_obs.json", "sections.obs_overhead.overhead", "absolute",
          0.10),
    Check("BENCH_obs.json", "sections.obs_overhead.live_overhead",
          "absolute", 0.10),
    Check("BENCH_obs.json", "sections.obs_overhead.on_ms", "relative", 0.60),
    Check("BENCH_obs.json", "sections.obs_overhead.live_ms", "relative",
          0.60),
    Check("BENCH_obs.json", "total_seconds", "relative", 0.60),
)

# Figure-summary sections are only comparable at matching --scale; the
# exact check below guards against silently comparing apples to pears.
SCALE_CHECK = Check("BENCH_obs.json", "scale", "exact")


def lookup(doc: object, path: str) -> object:
    """Resolve a dotted path with [i] list indexing into ``doc``."""
    cur = doc
    for part in path.split("."):
        while "[" in part:
            name, _, rest = part.partition("[")
            idx, _, part = rest.partition("]")
            if name:
                cur = cur[name]  # type: ignore[index]
            cur = cur[int(idx)]  # type: ignore[index]
            if not part:
                break
            part = part.lstrip(".")
        if part:
            cur = cur[part]  # type: ignore[index]
    return cur


def compare(check: Check, base: object, fresh: object) -> tuple[bool, str]:
    """Return (ok, human-readable delta)."""
    if check.mode == "exact":
        return base == fresh, "=" if base == fresh else "MISMATCH"
    b, f = float(base), float(fresh)  # type: ignore[arg-type]
    if check.mode == "absolute":
        delta = f - b
        return abs(delta) <= check.tol, f"{delta:+.4f} (±{check.tol:.2f})"
    # relative
    if b == 0.0:
        return f == 0.0, "baseline is zero"
    rel = f / b - 1.0
    return abs(rel) <= check.tol, f"{rel:+.1%} (±{check.tol:.0%})"


def load(directory: Path) -> dict[str, dict]:
    docs = {}
    for name in RESULT_FILES:
        p = directory / name
        if not p.exists():
            raise FileNotFoundError(f"missing {p}")
        docs[name] = json.loads(p.read_text())
    return docs


def run_comparison(baselines: dict, results: dict) -> tuple[list[list], int]:
    rows: list[list] = []
    failures = 0
    checks: list[Check] = [SCALE_CHECK, *CHECKS]
    scale_ok = True
    for check in checks:
        try:
            base = lookup(baselines[check.file], check.path)
            fresh = lookup(results[check.file], check.path)
        except (KeyError, IndexError, TypeError):
            rows.append([f"{check.file}:{check.path}", check.mode,
                         "?", "?", "MISSING", "FAIL"])
            failures += 1
            continue
        ok, delta = compare(check, base, fresh)
        if check is SCALE_CHECK:
            scale_ok = ok
        if not ok:
            failures += 1
        rows.append([
            f"{check.file}:{check.path}",
            check.mode,
            _fmt(base),
            _fmt(fresh),
            delta,
            "ok" if ok else "FAIL",
        ])
    if not scale_ok:
        rows.append(["(scale mismatch: wall-clock rows unreliable)",
                     "", "", "", "", ""])
    return rows, failures


def _fmt(v: object) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def format_table(rows: list[list]) -> str:
    headers = ["metric", "mode", "baseline", "fresh", "delta", "status"]
    widths = [
        max(len(headers[i]), *(len(str(r[i])) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def trajectory_row(results: dict) -> dict:
    """The numbers worth plotting across PRs."""
    obs = results["BENCH_obs.json"]
    thr = results["BENCH_throughput.json"]
    rec = results["BENCH_recovery.json"]
    spec = results.get("BENCH_speculation.json", {})
    prune = results.get("BENCH_pruning.json", {})
    par = results.get("BENCH_parallel.json", {})
    overhead = obs["sections"].get("obs_overhead", {})
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": obs.get("scale"),
        "record_mcells_per_sec": round(
            thr["record"]["cells_per_sec"] / 1e6, 3),
        "columnar_mcells_per_sec": round(
            thr["columnar"]["cells_per_sec"] / 1e6, 3),
        "columnar_speedup": round(thr["speedup"], 2),
        "tracing_overhead": overhead.get("overhead"),
        "live_bus_overhead": overhead.get("live_overhead"),
        "recovery_maps_reexecuted": [
            m["maps_reexecuted"] for m in rec["models"]
        ],
        "speculation_hang_ratio": spec.get("ratio"),
        "pruning_low_speedup": (
            prune["sweep"][0]["record"]["speedup"]
            if prune.get("sweep") else None
        ),
        "parallel_cpu_count": par.get("cpu_count"),
        "parallel_best_speedup": (
            max(r["speedup_vs_threaded"] for r in par["scaling"])
            if par.get("scaling") else None
        ),
        "runall_total_seconds": obs.get("total_seconds"),
    }


def update_baselines(results_dir: Path) -> None:
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    results = load(results_dir)
    for name, doc in results.items():
        (BASELINE_DIR / name).write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n"
        )
    traj_path = BASELINE_DIR / "trajectory.json"
    history = (
        json.loads(traj_path.read_text()) if traj_path.exists() else []
    )
    history.append(trajectory_row(results))
    traj_path.write_text(json.dumps(history, indent=1) + "\n")
    print(f"baselines updated from {results_dir} "
          f"({len(history)} trajectory rows)")


def format_trajectory() -> str:
    traj_path = BASELINE_DIR / "trajectory.json"
    if not traj_path.exists():
        return "(no trajectory history yet)"
    history = json.loads(traj_path.read_text())
    rows = [
        [
            h.get("recorded_at", "?"),
            h.get("scale", "?"),
            h.get("record_mcells_per_sec", "?"),
            h.get("columnar_mcells_per_sec", "?"),
            h.get("columnar_speedup", "?"),
            f"{h['tracing_overhead']:+.1%}"
            if h.get("tracing_overhead") is not None else "?",
            f"{h['live_bus_overhead']:+.1%}"
            if h.get("live_bus_overhead") is not None else "?",
        ]
        for h in history
    ]
    headers = ["recorded", "scale", "rec Mc/s", "col Mc/s", "speedup",
               "trace ovh", "live ovh"]
    widths = [
        max(len(headers[i]), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def main() -> int:
    ap = argparse.ArgumentParser(
        description="compare fresh benchmark JSONs against baselines"
    )
    ap.add_argument(
        "--results",
        default=str(Path(__file__).parent / "results"),
        help="directory holding fresh BENCH_*.json (runall.py --out)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite baselines from --results and append to trajectory",
    )
    ap.add_argument(
        "--report",
        default=None,
        help="also write the comparison table to this file",
    )
    args = ap.parse_args()
    results_dir = Path(args.results)

    if args.update:
        update_baselines(results_dir)
        print()
        print(format_trajectory())
        return 0

    if not BASELINE_DIR.exists():
        print(f"no baselines at {BASELINE_DIR}; run with --update first",
              file=sys.stderr)
        return 1
    baselines = load(BASELINE_DIR)
    results = load(results_dir)
    rows, failures = run_comparison(baselines, results)
    table = format_table(rows)
    report = (
        f"benchmark regression check — {len(rows)} metrics, "
        f"{failures} outside tolerance\n\n{table}\n\n"
        f"trajectory:\n{format_trajectory()}\n"
    )
    print(report)
    if args.report:
        Path(args.report).write_text(report)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
