"""Figure 9: Map and Reduce completion for Query 1, 22 reduce tasks.

Paper numbers (§4.1): first results at ~625 s (SIDR) / ~1,132 s
(SciHadoop) / ~2,797 s (Hadoop); completion at 1,264 s (SIDR, slightly
after SciHadoop's 1,250 s); Hadoop ~2.5x slower than both.

Reproduced shape: ordering of first results, SIDR@22 completing at or
slightly after SciHadoop, Hadoop far behind, SIDR's map curve no slower
than SciHadoop's.
"""

import pytest

from repro.bench.figures import fig09_task_completion
from repro.bench.report import format_series, format_table

PAPER = {
    "first_result": {"H": 2797.0, "SH": 1132.0, "SS": 625.0},
    "makespan": {"H": 3170.0, "SH": 1250.0, "SS": 1264.0},
}


@pytest.fixture(scope="module")
def fig9():
    return fig09_task_completion(num_reduces=22, scale=1)


def test_fig09_benchmark(benchmark, fig9, record_report):
    result = benchmark.pedantic(
        fig09_task_completion,
        kwargs={"num_reduces": 22, "scale": 1},
        rounds=1,
        iterations=1,
    )
    rows = []
    for label, name in [("H", "Hadoop"), ("SH", "SciHadoop"), ("SS", "SIDR")]:
        s = result.summaries[label]
        rows.append(
            [
                name,
                PAPER["first_result"][label],
                s["first_result"],
                PAPER["makespan"][label],
                s["makespan"],
                int(s["connections"]),
            ]
        )
    table = format_table(
        ["system", "paper first(s)", "ours first(s)",
         "paper total(s)", "ours total(s)", "connections"],
        rows,
        title="Figure 9 — Query 1 task completion, 22 reduce tasks",
    )
    series = format_series(
        {k: c for k, c in result.curves.items() if k.startswith("Reduce")},
        title="output availability over time",
    )
    record_report("fig09_completion", table + "\n\n" + series)
    benchmark.extra_info["summaries"] = {
        k: {m: round(v, 1) for m, v in s.items()}
        for k, s in result.summaries.items()
    }


def test_first_result_ordering(fig9):
    s = fig9.summaries
    assert s["SS"]["first_result"] < s["SH"]["first_result"] < s["H"]["first_result"]


def test_hadoop_factor(fig9):
    """Paper: ~2.5x slower than SciHadoop/SIDR overall."""
    s = fig9.summaries
    assert 1.6 < s["H"]["makespan"] / s["SH"]["makespan"] < 3.5


def test_sidr_22_close_to_scihadoop(fig9):
    """Paper: 1,264 s vs 1,250 s — SIDR@22 within ~15% of SciHadoop
    (its last reduce serially ingests the final maps' output)."""
    s = fig9.summaries
    ratio = s["SS"]["makespan"] / s["SH"]["makespan"]
    assert 0.9 < ratio < 1.25


def test_early_output_fraction(fig9):
    """Paper: initial results with only ~6% of the query's output
    complete — the first committed keyblock is a small fraction."""
    curve = fig9.curves["Reduce(SS)"]
    assert curve.fractions[0] < 0.10
