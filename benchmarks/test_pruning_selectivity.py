"""Zone-map pruning benchmark: split skipping across a selectivity sweep.

The workload is spatially clustered — every cell above the filter_gt
threshold lives in a contiguous prefix of the time axis, the way hot
regions cluster in real geodata.  As selectivity drops, zone maps prove
more and more splits irrelevant, and the engine should skip them
entirely: at <=0.1% selectivity the ISSUE acceptance floor is a >=5x
end-to-end speedup with output byte-identical to the unpruned run on
both data planes.

``benchmarks/runall.py`` re-measures the same sweep into
``BENCH_pruning.json`` for regression tracking (``regress.py``).
"""

import time

import numpy as np
import pytest

from repro.mapreduce.engine import LocalEngine
from repro.query.language import StructuralQuery
from repro.query.operators import ThresholdFilterOp
from repro.query.splits import slice_splits
from repro.scidata.metadata import DatasetMetadata, Dimension, Variable
from repro.scidata.zonemaps import build_zone_map
from repro.sidr.planner import build_sidr_job

SHAPE = (250, 40, 40)          # 400k cells
EXTRACTION = (5, 40, 40)       # 50 instances == 50 splits
NUM_SPLITS = 50
REDUCES = 8
THRESHOLD = 500.0
HOT = 1000.0
SELECTIVITIES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


@pytest.fixture(scope="module")
def plan():
    meta = DatasetMetadata(
        dimensions=(
            Dimension("t", SHAPE[0]),
            Dimension("y", SHAPE[1]),
            Dimension("x", SHAPE[2]),
        ),
        variables=(Variable("v", "double", ("t", "y", "x")),),
    )
    return StructuralQuery(
        variable="v",
        extraction_shape=EXTRACTION,
        operator=ThresholdFilterOp(THRESHOLD),
    ).compile(meta)


def clustered_data(selectivity):
    """Background noise in [0, 1) with ``selectivity`` of the cells set
    hot, packed contiguously from the start of the array."""
    rng = np.random.default_rng(11)
    data = rng.uniform(0.0, 1.0, SHAPE)
    hot = max(1, round(selectivity * data.size))
    data.reshape(-1)[:hot] = HOT
    return data


def timed_run(plan, data, plane, prune, runs=3):
    zone_map = (
        build_zone_map("v", data, tile_shape=EXTRACTION) if prune else None
    )
    job, barrier, sidr = build_sidr_job(
        plan,
        slice_splits(plan, num_splits=NUM_SPLITS),
        REDUCES,
        data,
        data_plane=plane,
        prune=prune,
        zone_map=zone_map,
    )
    engine = LocalEngine(observability=False)
    res = engine.run_serial(job, barrier)  # warmup + output capture
    t = float("inf")
    for _ in range(runs):
        s = time.perf_counter()
        res = engine.run_serial(job, barrier)
        t = min(t, time.perf_counter() - s)
    pruned = sidr.pruning.num_pruned if sidr.pruning is not None else 0
    return t, res, pruned


def test_sweep_byte_identical_both_planes(plan, record_report):
    """Across the full selectivity sweep, pruning never changes a bit
    of output on either data plane — and prunes monotonically more
    splits as selectivity drops."""
    rows = []
    pruned_by_sel = []
    for sel in SELECTIVITIES:
        data = clustered_data(sel)
        for plane in ("record", "columnar"):
            t_full, full, _ = timed_run(plan, data, plane, False, runs=1)
            t_pruned, pruned, n = timed_run(plan, data, plane, True, runs=1)
            assert full.all_records() == pruned.all_records(), (sel, plane)
            rows.append(
                f"  {sel:>8.5%}  {plane:<8}  pruned {n:>2}/{NUM_SPLITS}  "
                f"full {t_full * 1e3:7.1f} ms  pruned {t_pruned * 1e3:7.1f} ms"
            )
            if plane == "record":
                pruned_by_sel.append(n)
    # lower selectivity => at least as many splits pruned
    assert pruned_by_sel == sorted(pruned_by_sel, reverse=True)
    assert pruned_by_sel[0] == NUM_SPLITS - 1  # keep-one at the bottom
    assert pruned_by_sel[-1] == 0              # 100% selectivity: no-op
    record_report(
        "pruning_selectivity",
        "zone-map pruning sweep (byte-identical everywhere):\n"
        + "\n".join(rows),
    )


@pytest.mark.parametrize("selectivity", [1e-5, 1e-3])
@pytest.mark.parametrize("plane", ["record", "columnar"])
def test_speedup_floor_at_low_selectivity(plan, plane, selectivity):
    """ISSUE acceptance: >=5x at <=0.1% selectivity, byte-identical."""
    data = clustered_data(selectivity)
    t_full, full, _ = timed_run(plan, data, plane, False, runs=5)
    t_pruned, pruned, n = timed_run(plan, data, plane, True, runs=5)
    assert full.all_records() == pruned.all_records()
    assert n == NUM_SPLITS - 1
    speedup = t_full / t_pruned
    assert speedup >= 5.0, (
        f"{plane} @ {selectivity:.3%}: {speedup:.1f}x < 5x "
        f"(full {t_full:.4f}s, pruned {t_pruned:.4f}s)"
    )


def test_pruning_counters(plan):
    """The skipped work is visible: split/key counters on both planes,
    plus the residual-pushdown mask counter on the columnar plane."""
    data = clustered_data(1e-3)
    _, res, _ = timed_run(plan, data, "columnar", True, runs=1)
    assert res.counters.get("plan.splits.pruned") == NUM_SPLITS - 1
    assert res.counters.get("plan.keys.synthesized") == NUM_SPLITS - 1
    assert res.counters.get("pushdown.rows.masked") > 0
    _, res, _ = timed_run(plan, data, "record", True, runs=1)
    assert res.counters.get("plan.splits.pruned") == NUM_SPLITS - 1
