"""Shared fixtures for the benchmark harness.

Every benchmark writes its formatted paper-vs-measured report both to
stdout (visible with ``pytest -s`` / in bench_output.txt context) and to
``benchmarks/results/<name>.txt`` so the artifacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_report(results_dir):
    """Callable saving a named report and echoing it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _record
