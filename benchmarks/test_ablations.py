"""Ablation benches for the design choices DESIGN.md §6 calls out.

* Skew-bound sweep (§3.1 footnote 1): smaller bounds tighten balance;
  larger bounds give simpler unit shapes and (slightly) fewer
  cross-boundary dependencies.
* Store-vs-recompute of the dependency map (§3.2.1): SIDR stores the map
  at job submission; the alternative recomputes each I_l at reduce
  startup.
* Split alignment: extraction-aligned splits eliminate cross-split
  instances, shrinking dependency sets — at the cost of coarser split
  size control.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.tables import (
    ablation_skew_bound,
    ablation_store_vs_recompute,
)
from repro.bench.workloads import query1_workload
from repro.query.splits import aligned_slice_splits
from repro.sidr.dependencies import compute_dependencies
from repro.sidr.partition_plus import partition_plus


@pytest.fixture(scope="module")
def wl():
    return query1_workload()


def test_skew_bound_sweep(benchmark, wl, record_report):
    rows = benchmark.pedantic(
        ablation_skew_bound,
        kwargs={
            "bounds": (100, 1_000, 10_000, 100_000),
            "num_reduces": 66,
            "workload": wl,
        },
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["skew bound", "unit volume", "max skew (cells)", "SIDR connections"],
        [
            [r.skew_bound, r.unit_volume, r.max_skew_cells, r.sidr_connections]
            if r.feasible
            else [r.skew_bound, "-", "-", "infeasible (too few instances)"]
            for r in rows
        ],
        title="Ablation — partition+ skew bound (Query 1, r=66)",
    )
    record_report("ablation_skew_bound", table)
    feasible = [r for r in rows if r.feasible]
    assert feasible, "at least one feasible bound expected"
    units = [r.unit_volume for r in feasible]
    assert units == sorted(units)
    for r in feasible:
        assert r.max_skew_cells <= max(r.unit_volume, r.skew_bound)


def test_store_vs_recompute(benchmark, wl, record_report):
    res = benchmark.pedantic(
        ablation_store_vs_recompute,
        kwargs={"num_reduces": 176, "workload": wl},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["strategy", "seconds"],
        [
            ["store (full map at submission)", res.store_seconds],
            ["recompute one I_l at startup", res.recompute_one_seconds],
            ["recompute all (estimated)", res.recompute_all_seconds_est],
        ],
        title="Ablation — store vs recompute dependency maps (§3.2.1)",
    )
    record_report("ablation_store_recompute", table)
    assert res.store_seconds > 0 and res.recompute_one_seconds > 0


def test_split_alignment(benchmark, wl, record_report):
    def run():
        part = partition_plus(wl.plan.intermediate_space, 66)
        unaligned = compute_dependencies(wl.plan, wl.splits, part)
        aligned_splits = aligned_slice_splits(
            wl.plan, num_splits=len(wl.splits)
        )
        aligned = compute_dependencies(wl.plan, aligned_splits, part)
        return unaligned, aligned, len(aligned_splits)

    unaligned, aligned, n_aligned = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = format_table(
        ["split generation", "splits", "sum |I_l|", "max |I_l|"],
        [
            ["block-sized (SciHadoop default)", len(wl.splits),
             unaligned.sidr_connections, unaligned.max_dependency_size()],
            ["extraction-aligned", n_aligned,
             aligned.sidr_connections, aligned.max_dependency_size()],
        ],
        title="Ablation — split alignment vs dependency-set size (r=66)",
    )
    record_report("ablation_split_alignment", table)
    # Aligned splits: no instance spans splits, so (normalized per split)
    # dependency edges shrink.
    assert (
        aligned.sidr_connections / n_aligned
        <= unaligned.sidr_connections / len(wl.splits)
    )
