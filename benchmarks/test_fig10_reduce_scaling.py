"""Figure 10: SIDR reduce-count scaling for Query 1.

Paper (§4.1): with 22/66/176/528 reduce tasks, SIDR's time to first
result and total time both fall; at 528 it finishes ~29% faster than
SciHadoop and "nearly three times faster than Hadoop"; the reduce curve
approaches the map curve; SciHadoop gains nothing from more reducers.
"""

import pytest

from repro.bench.figures import fig10_reduce_scaling
from repro.bench.report import format_series, format_table

COUNTS = (22, 66, 176, 528)


@pytest.fixture(scope="module")
def fig10():
    return fig10_reduce_scaling(sidr_reduce_counts=COUNTS, scale=1)


def test_fig10_benchmark(benchmark, record_report):
    result = benchmark.pedantic(
        fig10_reduce_scaling,
        kwargs={"sidr_reduce_counts": COUNTS, "scale": 1},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            "SciHadoop r=22",
            result.summaries["SH-22"]["first_result"],
            result.summaries["SH-22"]["makespan"],
            0,
        ]
    ]
    for r in COUNTS:
        s = result.summaries[f"SS-{r}"]
        rows.append(
            [f"SIDR r={r}", s["first_result"], s["makespan"], int(s["early_reduces"])]
        )
    table = format_table(
        ["configuration", "first result(s)", "total(s)", "early reduces"],
        rows,
        title=(
            "Figure 10 — SIDR reduce-count scaling "
            f"(best-vs-SciHadoop {result.notes['sidr_best_vs_scihadoop']:.2f}x; "
            "paper: 1.29x at r=528)"
        ),
    )
    series = format_series(
        {k: c for k, c in result.curves.items() if "Reduce" in k},
        title="output availability over time",
    )
    record_report("fig10_reduce_scaling", table + "\n\n" + series)
    # Shape assertions (also enforced under --benchmark-only):
    firsts = [result.summaries[f"SS-{r}"]["first_result"] for r in COUNTS]
    assert firsts == sorted(firsts, reverse=True)
    assert result.notes["sidr_best_vs_scihadoop"] > 1.05


def test_total_time_improves_with_r(fig10):
    s = fig10.summaries
    assert s["SS-528"]["makespan"] < s["SS-22"]["makespan"]


def test_curve_approaches_map(fig10):
    s = fig10.summaries
    gap_528 = s["SS-528"]["makespan"] - s["SS-528"]["last_map_finish"]
    gap_22 = s["SS-22"]["makespan"] - s["SS-22"]["last_map_finish"]
    assert gap_528 < 0.25 * gap_22


def test_most_reduces_early_at_528(fig10):
    s = fig10.summaries["SS-528"]
    assert s["early_reduces"] > 0.9 * 528
