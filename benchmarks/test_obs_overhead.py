"""Tracing-overhead benchmark (acceptance: < 10%).

Runs the engine-throughput workload (weekly means over a year of
temperature data, the same geometry as ``test_engine_throughput``) with
the observability layer on and off, and asserts that spans + metrics add
less than 10% to the min-of-N wall time.  Min-of-N because scheduler
noise only ever adds time — the minimum is the cleanest estimate of the
true cost on a shared machine.
"""

import json
import time

import numpy as np
import pytest

from repro.mapreduce.engine import LocalEngine
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp
from repro.query.splits import slice_splits
from repro.scidata.generators import temperature_dataset
from repro.sidr.planner import build_sidr_job

RUNS = 3
MAX_OVERHEAD = 0.10
# The live plane (event bus + progress tracker + straggler detector +
# one draining subscription) rides on top of spans/metrics; allow a bit
# of scheduler-noise headroom over the plain tracing bound.
MAX_LIVE_OVERHEAD = 0.15


@pytest.fixture(scope="module")
def job_and_barrier():
    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    q = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    )
    plan = q.compile(field.metadata)
    sp = slice_splits(plan, num_splits=16)
    job, barrier, _ = build_sidr_job(plan, sp, 8, data)
    return job, barrier


def _min_time(engine, job, barrier, runs=RUNS):
    best = float("inf")
    for _ in range(runs):
        t = time.perf_counter()
        engine.run_serial(job, barrier)
        best = min(best, time.perf_counter() - t)
    return best


def test_tracing_overhead_under_10_percent(job_and_barrier, record_report):
    job, barrier = job_and_barrier
    on = LocalEngine(observability=True)
    off = LocalEngine(observability=False)
    # Interleave a warmup of each before timing so caches are equally hot.
    on.run_serial(job, barrier)
    off.run_serial(job, barrier)
    t_off = _min_time(off, job, barrier)
    t_on = _min_time(on, job, barrier)
    overhead = t_on / t_off - 1.0
    record_report(
        "obs_overhead",
        "tracing overhead (weekly-mean workload, min of "
        f"{RUNS}):\n"
        f"  observability off: {t_off * 1e3:.1f} ms\n"
        f"  observability on:  {t_on * 1e3:.1f} ms\n"
        f"  overhead:          {overhead:+.1%} (bound {MAX_OVERHEAD:.0%})\n"
        + json.dumps(
            {
                "off_ms": round(t_off * 1e3, 2),
                "on_ms": round(t_on * 1e3, 2),
                "overhead": round(overhead, 4),
            }
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"({t_on * 1e3:.1f} ms vs {t_off * 1e3:.1f} ms)"
    )


def test_live_bus_overhead_bounded(job_and_barrier, record_report):
    """Publishing every task/spill/fetch event into the live bus (with
    the full ``--live`` consumer stack attached) must not blow the
    hot-path budget."""
    from repro.obs import (
        EventBus,
        JobObservability,
        MetricsRegistry,
        ProgressTracker,
        StragglerDetector,
    )

    job, barrier = job_and_barrier
    off = LocalEngine(observability=False)
    live = LocalEngine(observability=True)

    def run_live():
        metrics = MetricsRegistry()
        bus = EventBus(metrics=metrics)
        obs = JobObservability(job.name, metrics=metrics, bus=bus)
        ProgressTracker(bus)
        StragglerDetector(bus, metrics=metrics)
        sub = bus.subscribe()
        live.run_serial(job, barrier, obs=obs)
        assert bus.dropped == 0
        return sub.drain()

    live.run_serial(job, barrier)  # warmup
    off.run_serial(job, barrier)
    t_off = _min_time(off, job, barrier)
    t_live = float("inf")
    events = []
    for _ in range(RUNS):
        t = time.perf_counter()
        events = run_live()
        t_live = min(t_live, time.perf_counter() - t)
    overhead = t_live / t_off - 1.0
    record_report(
        "obs_live_overhead",
        "tracing + live bus overhead (weekly-mean workload, min of "
        f"{RUNS}):\n"
        f"  observability off:    {t_off * 1e3:.1f} ms\n"
        f"  on + live bus:        {t_live * 1e3:.1f} ms\n"
        f"  events per run:       {len(events)}\n"
        f"  overhead:             {overhead:+.1%} "
        f"(bound {MAX_LIVE_OVERHEAD:.0%})\n"
        + json.dumps(
            {
                "off_ms": round(t_off * 1e3, 2),
                "live_ms": round(t_live * 1e3, 2),
                "events": len(events),
                "overhead": round(overhead, 4),
            }
        ),
    )
    assert len(events) > 0
    assert overhead < MAX_LIVE_OVERHEAD, (
        f"live-bus overhead {overhead:.1%} exceeds {MAX_LIVE_OVERHEAD:.0%} "
        f"({t_live * 1e3:.1f} ms vs {t_off * 1e3:.1f} ms)"
    )


def test_identical_output_on_and_off(job_and_barrier):
    """The run being measured must be the same computation both ways."""
    job, barrier = job_and_barrier
    a = LocalEngine(observability=True).run_serial(job, barrier)
    b = LocalEngine(observability=False).run_serial(job, barrier)
    assert a.all_records() == b.all_records()


def test_span_volume_is_bounded(job_and_barrier):
    """Span count scales with tasks, not records: the 1.1M-cell workload
    must not allocate per-record spans."""
    job, barrier = job_and_barrier
    res = LocalEngine().run_serial(job, barrier)
    n_tasks = len(job.splits) + job.num_reduce_tasks
    # job + tasks + 2 phases per task + a barrier wait and at most one
    # early-start instant per reduce; per-record spans would be thousands.
    assert len(res.obs.tracer) <= 1 + 3 * n_tasks + 2 * job.num_reduce_tasks
