"""Figure 13: intermediate key skew under Hadoop's partition function.

Paper (§4.3): patterned intermediate keys ("every intermediate key was
even") hash to a single parity class, so half the reduce tasks receive no
data and the other half receive double; "SIDR evenly distributes the work
and completes 42% faster."
"""

import pytest

from repro.bench.figures import fig13_skew
from repro.bench.report import format_series, format_table


@pytest.fixture(scope="module")
def fig13():
    return fig13_skew(num_reduces=22, scale=1)


def test_fig13_benchmark(benchmark, record_report):
    result = benchmark.pedantic(
        fig13_skew,
        kwargs={"num_reduces": 22, "scale": 1},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            "stock (skewed)",
            result.summaries["stock"]["first_result"],
            result.summaries["stock"]["makespan"],
        ],
        [
            "SIDR (balanced)",
            result.summaries["SIDR"]["first_result"],
            result.summaries["SIDR"]["makespan"],
        ],
    ]
    table = format_table(
        ["configuration", "first result(s)", "total(s)"],
        rows,
        title=(
            "Figure 13 — key-skew pathology, 22 reduce tasks "
            f"(SIDR {result.notes['speedup'] - 1:.0%} faster; paper: 42%)"
        ),
    )
    series = format_series(
        {k: c for k, c in result.curves.items() if "Reduce" in k},
        title="task completion over time",
    )
    record_report("fig13_skew", table + "\n\n" + series)
    assert result.notes["speedup"] > 1.25


def test_speedup_direction_and_scale(fig13):
    """Paper: 42% faster; require a substantial win at full scale."""
    assert fig13.notes["speedup"] > 1.2


def test_idle_half_commits_at_barrier(fig13):
    c = fig13.curves["Reduce(stock,22)"]
    # Half the tasks (the starved parity class) finish in a tight cluster
    # right after the barrier; the loaded half takes much longer.
    assert c.fraction_at(c.times[0] * 1.05) >= 0.45
    assert c.times[-1] > 1.3 * c.times[0]
