"""§4.5: partition function micro-benchmark.

Paper: partitioning 6.48 M intermediate key/value pairs took 200 ms
(sigma 18.8) with the default function and 223 ms (sigma 21) with
partition+ — a ~1.1x slowdown that "has a negligible impact on total Map
task run-time, given Map task execution times range from tens of seconds
to tens of minutes".

Ours: both vectorized over Query 1's K'_T; partition+ pays a
searchsorted over keyblock boundaries on top of the linearization, so it
lands ~2x the default rather than 1.1x — still hundreds of milliseconds
against map tasks of tens of seconds, i.e. the same negligible-share
conclusion.
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.bench.tables import sec45_partition_micro
from repro.mapreduce.partitioner import (
    HashPartitioner,
    JavaStyleKeyHash,
    RangePartitioner,
)
from repro.sidr.partition_plus import partition_plus

NUM_KEYS = 6_480_000
SPACE = (3600, 10, 20, 5)


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return np.column_stack(
        [rng.integers(0, e, size=NUM_KEYS) for e in SPACE]
    ).astype(np.int64)


def test_partition_micro_report(benchmark, record_report):
    res = benchmark.pedantic(
        sec45_partition_micro,
        kwargs={"num_keys": NUM_KEYS, "num_reduces": 22, "space": SPACE},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["function", "paper (ms)", "ours (ms)"],
        [
            ["default (hash)", 200.0, res.default_seconds * 1000],
            ["partition+", 223.0, res.partition_plus_seconds * 1000],
        ],
        title=(
            f"§4.5 — partitioning {NUM_KEYS / 1e6:.2f}M keys "
            f"(slowdown {res.slowdown:.2f}x; paper 1.12x)"
        ),
    )
    record_report("sec45_partition_micro", table)
    # Same order of magnitude; negligible against tens-of-seconds maps.
    assert res.partition_plus_seconds < 6 * res.default_seconds
    assert res.partition_plus_seconds < 5.0


def test_default_partitioner_throughput(benchmark, keys):
    part = HashPartitioner(JavaStyleKeyHash())
    benchmark(part.partition_many, keys, 22)


def test_partition_plus_throughput(benchmark, keys):
    blocks = partition_plus(SPACE, 22)
    part = RangePartitioner(SPACE, blocks.cell_boundaries())
    benchmark(part.partition_many, keys, 22)


def test_identical_assignments_where_it_matters(keys):
    """Sanity alongside timing: partition+ routes every key into the
    keyblock that geometrically contains it."""
    blocks = partition_plus(SPACE, 22)
    part = RangePartitioner(SPACE, blocks.cell_boundaries())
    sample = keys[:: max(1, len(keys) // 2000)]
    assigned = part.partition_many(sample, 22)
    for key, l in zip(sample[:200], assigned[:200]):
        assert blocks.blocks[int(l)].contains_key(tuple(int(x) for x in key))
