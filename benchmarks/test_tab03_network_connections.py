"""Table 3: network connection scaling (§4.6).

Paper rows (2,781 maps):

    reduces   Hadoop      SIDR
    22        61,182      2,820
    66        183,546     2,905
    132       367,092     3,031
    264       734,184     3,267
    528       1,468,368   3,760
    1024      2,936,736   5,106

Ours are computed from the real dependency analysis of Query 1's 2,781
coordinate splits; Hadoop's column is exact by construction and SIDR's
matches the paper within a few percent (boundary splits feeding two
keyblocks are the only source of connections beyond one per split).
"""

import pytest

from repro.bench.report import format_table
from repro.bench.tables import table3_network_connections

COUNTS = (22, 66, 132, 264, 528, 1024)

PAPER_HADOOP = {
    22: 61_182, 66: 183_546, 132: 367_092,
    264: 734_184, 528: 1_468_368, 1024: 2_936_736,
}
PAPER_SIDR = {
    22: 2_820, 66: 2_905, 132: 3_031,
    264: 3_267, 528: 3_760, 1024: 5_106,
}


@pytest.fixture(scope="module")
def rows():
    return table3_network_connections(reduce_counts=COUNTS)


def test_table3_benchmark(benchmark, record_report):
    rows = benchmark.pedantic(
        table3_network_connections,
        kwargs={"reduce_counts": COUNTS},
        rounds=1,
        iterations=1,
    )
    out = []
    for r in rows:
        out.append(
            [
                f"{r.num_maps}/{r.num_reduces}",
                PAPER_HADOOP[r.num_reduces],
                r.hadoop_connections,
                PAPER_SIDR[r.num_reduces],
                r.sidr_connections,
            ]
        )
    table = format_table(
        ["maps/reduces", "paper Hadoop", "ours Hadoop",
         "paper SIDR", "ours SIDR"],
        out,
        title="Table 3 — map->reduce network connections",
    )
    record_report("tab03_network_connections", table)
    for r in rows:
        if r.num_reduces == 1024:
            # The paper's last row (2,936,736) is not 2,781 x 1024
            # (= 2,847,744); every other row is exactly maps x reduces.
            # We report the arithmetically consistent value.
            assert r.hadoop_connections == r.num_maps * 1024
        else:
            assert r.hadoop_connections == PAPER_HADOOP[r.num_reduces]


def test_hadoop_column_exact(rows):
    for r in rows:
        assert r.hadoop_connections == r.num_maps * r.num_reduces
        if r.num_reduces != 1024:  # paper's 1024 row is internally off
            assert r.hadoop_connections == PAPER_HADOOP[r.num_reduces]


def test_sidr_column_close_to_paper(rows):
    """Close to the paper at low-to-mid reducer counts; at very high
    counts the exact figure depends on where split boundaries fall
    relative to keyblock boundaries (ours cross less often), so allow a
    factor of two there."""
    for r in rows:
        paper = PAPER_SIDR[r.num_reduces]
        rel = abs(r.sidr_connections - paper) / paper
        assert rel < (0.25 if r.num_reduces <= 264 else 1.0), (
            r.num_reduces, r.sidr_connections, paper,
        )
        # Never fewer than one connection per producing split.
        assert r.sidr_connections >= r.num_maps


def test_sidr_scales_sublinearly(rows):
    """Hadoop's column grows ~47x from 22 to 1024 reduces; SIDR's grows
    <2x (paper: 1.8x)."""
    first, last = rows[0], rows[-1]
    assert last.hadoop_connections / first.hadoop_connections > 40
    assert last.sidr_connections / first.sidr_connections < 2.5


def test_reduction_factor(rows):
    """At 1024 reduce tasks the paper saves ~575x; require >100x."""
    r = rows[-1]
    assert r.hadoop_connections / r.sidr_connections > 100
