#!/usr/bin/env python3
"""Regenerate every paper table/figure report in one pass.

A plain script (no pytest) for readers who just want the artifacts:

    python benchmarks/runall.py [--scale N] [--out DIR]

At scale 1 (the paper's geometry) the full pass takes a couple of
minutes; ``--scale 10`` gives a quick look.  Reports land in
``benchmarks/results/`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=int, default=1)
    ap.add_argument(
        "--out", default=str(Path(__file__).parent / "results")
    )
    args = ap.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    scale = args.scale

    from repro.bench import figures, tables
    from repro.bench.report import format_series, format_table

    def save(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"== {name} ==")
        print(text)
        print()

    t0 = time.time()

    # Figures ----------------------------------------------------------
    fig9 = figures.fig09_task_completion(scale=scale)
    save(
        "fig09_completion",
        format_table(
            ["system", "first(s)", "total(s)", "connections"],
            [
                [k, s["first_result"], s["makespan"], int(s["connections"])]
                for k, s in fig9.summaries.items()
            ],
            title="Figure 9 — Query 1, 22 reduce tasks",
        )
        + "\n\n"
        + format_series(
            {k: c for k, c in fig9.curves.items() if "Reduce" in k},
            title="output availability",
        ),
    )

    counts = (22, 66, 176, 528) if scale == 1 else (22, 66, 176)
    fig10 = figures.fig10_reduce_scaling(sidr_reduce_counts=counts, scale=scale)
    save(
        "fig10_reduce_scaling",
        format_table(
            ["config", "first(s)", "total(s)"],
            [
                [k, s["first_result"], s["makespan"]]
                for k, s in fig10.summaries.items()
            ],
            title=(
                "Figure 10 — SIDR reduce scaling "
                f"(best vs SciHadoop {fig10.notes['sidr_best_vs_scihadoop']:.2f}x)"
            ),
        ),
    )

    fig11 = figures.fig11_filter_query(scale=scale)
    save(
        "fig11_filter_query",
        format_table(
            ["config", "first(s)", "total(s)"],
            [
                [k, s["first_result"], s["makespan"]]
                for k, s in fig11.summaries.items()
            ],
            title="Figure 11 — Query 2 (filter)",
        ),
    )

    fig12 = figures.fig12_variance(scale=scale, runs=10)
    save(
        "fig12_variance",
        format_table(
            ["config", "mean total(s)", "std total(s)", "max pointwise std"],
            [
                [k, s["mean_makespan"], s["std_makespan"], s["max_pointwise_std"]]
                for k, s in fig12.summaries.items()
            ],
            title="Figure 12 — variance over 10 jittered runs",
        ),
    )

    fig13 = figures.fig13_skew(scale=scale)
    save(
        "fig13_skew",
        format_table(
            ["config", "total(s)"],
            [[k, s["makespan"]] for k, s in fig13.summaries.items()],
            title=(
                f"Figure 13 — key skew (SIDR {fig13.notes['speedup'] - 1:.0%} "
                "faster; paper 42%)"
            ),
        ),
    )

    # Tables -----------------------------------------------------------
    t3 = tables.table3_network_connections()
    save(
        "tab03_network_connections",
        format_table(
            ["maps/reduces", "Hadoop", "SIDR"],
            [
                [f"{r.num_maps}/{r.num_reduces}", r.hadoop_connections, r.sidr_connections]
                for r in t3
            ],
            title="Table 3 — network connections",
        ),
    )

    with tempfile.TemporaryDirectory() as d:
        t2 = tables.table2_reduce_write_scaling(
            d, cells_per_task=262_144, runs=3
        )
    save(
        "tab02_contiguous_output",
        format_table(
            ["strategy", "reduces", "time(s)", "size(MB)", "seeks"],
            [
                [r.strategy, r.total_reduces, r.seconds_mean,
                 r.file_size_bytes / (1 << 20), r.seeks]
                for r in t2
            ],
            title="Table 2 — reduce write scaling",
        ),
    )

    micro = tables.sec45_partition_micro()
    save(
        "sec45_partition_micro",
        format_table(
            ["function", "ms"],
            [
                ["default hash", micro.default_seconds * 1e3],
                ["partition+", micro.partition_plus_seconds * 1e3],
            ],
            title=f"§4.5 — 6.48M keys (slowdown {micro.slowdown:.2f}x)",
        ),
    )

    print(f"all reports regenerated in {time.time() - t0:.0f}s -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
