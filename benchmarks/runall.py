#!/usr/bin/env python3
"""Regenerate every paper table/figure report in one pass.

A plain script (no pytest) for readers who just want the artifacts:

    python benchmarks/runall.py [--scale N] [--out DIR]

At scale 1 (the paper's geometry) the full pass takes a couple of
minutes; ``--scale 10`` gives a quick look.  Reports land in
``benchmarks/results/`` (or ``--out``), alongside a machine-readable
``BENCH_obs.json`` with per-section wall times, the figure summary
numbers, and a tracing-overhead measurement.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=int, default=1)
    ap.add_argument(
        "--out", default=str(Path(__file__).parent / "results")
    )
    args = ap.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    scale = args.scale

    from repro.bench import figures, tables
    from repro.bench.report import format_series, format_table

    bench: dict = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale,
        "sections": {},
    }
    section_start = [time.time()]

    def save(name: str, text: str, data: dict | None = None) -> None:
        now = time.time()
        section = {"seconds": round(now - section_start[0], 3)}
        if data:
            section.update(data)
        bench["sections"][name] = section
        section_start[0] = now
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"== {name} ==")
        print(text)
        print()

    t0 = time.time()

    # Figures ----------------------------------------------------------
    fig9 = figures.fig09_task_completion(scale=scale)
    save(
        "fig09_completion",
        format_table(
            ["system", "first(s)", "total(s)", "connections"],
            [
                [k, s["first_result"], s["makespan"], int(s["connections"])]
                for k, s in fig9.summaries.items()
            ],
            title="Figure 9 — Query 1, 22 reduce tasks",
        )
        + "\n\n"
        + format_series(
            {k: c for k, c in fig9.curves.items() if "Reduce" in k},
            title="output availability",
        ),
        data={"summaries": fig9.summaries, "notes": fig9.notes},
    )

    counts = (22, 66, 176, 528) if scale == 1 else (22, 66, 176)
    fig10 = figures.fig10_reduce_scaling(sidr_reduce_counts=counts, scale=scale)
    save(
        "fig10_reduce_scaling",
        format_table(
            ["config", "first(s)", "total(s)"],
            [
                [k, s["first_result"], s["makespan"]]
                for k, s in fig10.summaries.items()
            ],
            title=(
                "Figure 10 — SIDR reduce scaling "
                f"(best vs SciHadoop {fig10.notes['sidr_best_vs_scihadoop']:.2f}x)"
            ),
        ),
        data={"summaries": fig10.summaries, "notes": fig10.notes},
    )

    fig11 = figures.fig11_filter_query(scale=scale)
    save(
        "fig11_filter_query",
        format_table(
            ["config", "first(s)", "total(s)"],
            [
                [k, s["first_result"], s["makespan"]]
                for k, s in fig11.summaries.items()
            ],
            title="Figure 11 — Query 2 (filter)",
        ),
        data={"summaries": fig11.summaries, "notes": fig11.notes},
    )

    fig12 = figures.fig12_variance(scale=scale, runs=10)
    save(
        "fig12_variance",
        format_table(
            ["config", "mean total(s)", "std total(s)", "max pointwise std"],
            [
                [k, s["mean_makespan"], s["std_makespan"], s["max_pointwise_std"]]
                for k, s in fig12.summaries.items()
            ],
            title="Figure 12 — variance over 10 jittered runs",
        ),
        data={"summaries": fig12.summaries, "notes": fig12.notes},
    )

    fig13 = figures.fig13_skew(scale=scale)
    save(
        "fig13_skew",
        format_table(
            ["config", "total(s)"],
            [[k, s["makespan"]] for k, s in fig13.summaries.items()],
            title=(
                f"Figure 13 — key skew (SIDR {fig13.notes['speedup'] - 1:.0%} "
                "faster; paper 42%)"
            ),
        ),
        data={"summaries": fig13.summaries, "notes": fig13.notes},
    )

    # Tables -----------------------------------------------------------
    t3 = tables.table3_network_connections()
    save(
        "tab03_network_connections",
        format_table(
            ["maps/reduces", "Hadoop", "SIDR"],
            [
                [f"{r.num_maps}/{r.num_reduces}", r.hadoop_connections, r.sidr_connections]
                for r in t3
            ],
            title="Table 3 — network connections",
        ),
        data={
            "rows": [
                {
                    "maps": r.num_maps,
                    "reduces": r.num_reduces,
                    "hadoop": r.hadoop_connections,
                    "sidr": r.sidr_connections,
                }
                for r in t3
            ]
        },
    )

    with tempfile.TemporaryDirectory() as d:
        t2 = tables.table2_reduce_write_scaling(
            d, cells_per_task=262_144, runs=3
        )
    save(
        "tab02_contiguous_output",
        format_table(
            ["strategy", "reduces", "time(s)", "size(MB)", "seeks"],
            [
                [r.strategy, r.total_reduces, r.seconds_mean,
                 r.file_size_bytes / (1 << 20), r.seeks]
                for r in t2
            ],
            title="Table 2 — reduce write scaling",
        ),
        data={
            "rows": [
                {
                    "strategy": r.strategy,
                    "reduces": r.total_reduces,
                    "seconds": r.seconds_mean,
                    "bytes": r.file_size_bytes,
                    "seeks": r.seeks,
                }
                for r in t2
            ]
        },
    )

    micro = tables.sec45_partition_micro()
    save(
        "sec45_partition_micro",
        format_table(
            ["function", "ms"],
            [
                ["default hash", micro.default_seconds * 1e3],
                ["partition+", micro.partition_plus_seconds * 1e3],
            ],
            title=f"§4.5 — 6.48M keys (slowdown {micro.slowdown:.2f}x)",
        ),
        data={
            "default_seconds": micro.default_seconds,
            "partition_plus_seconds": micro.partition_plus_seconds,
            "slowdown": micro.slowdown,
        },
    )

    # Observability overhead ------------------------------------------
    overhead = _measure_tracing_overhead()
    save(
        "obs_overhead",
        "tracing overhead (weekly-mean engine workload, min of "
        f"{overhead['runs']}):\n"
        f"  observability off:     {overhead['off_ms']:.1f} ms\n"
        f"  observability on:      {overhead['on_ms']:.1f} ms\n"
        f"  on + live event bus:   {overhead['live_ms']:.1f} ms\n"
        f"  overhead:              {overhead['overhead']:+.1%}\n"
        f"  overhead w/ live bus:  {overhead['live_overhead']:+.1%}",
        data=overhead,
    )

    # Data-plane throughput (record vs columnar) ----------------------
    throughput = _measure_throughput()
    save(
        "throughput",
        "engine throughput (weekly-mean workload, "
        f"{throughput['cells']:,} cells, min of {throughput['runs']}):\n"
        f"  record plane:   {throughput['record']['seconds']:.3f} s  "
        f"{throughput['record']['cells_per_sec'] / 1e6:.2f} Mcells/s\n"
        f"  columnar plane: {throughput['columnar']['seconds']:.3f} s  "
        f"{throughput['columnar']['cells_per_sec'] / 1e6:.2f} Mcells/s\n"
        f"  speedup:        {throughput['speedup']:.1f}x  "
        f"(byte-identical: {'yes' if throughput['identical'] else 'NO'})",
        data=throughput,
    )
    (out / "BENCH_throughput.json").write_text(
        json.dumps(throughput, indent=1, sort_keys=True) + "\n"
    )

    # Failure recovery: measured vs analytical (§6) -------------------
    recovery = _measure_recovery()
    save(
        "recovery",
        format_table(
            ["model", "maps re-run", "predicted", "measured (s)",
             "predicted (s)", "output ok"],
            [
                [r["model"], r["maps_reexecuted"],
                 r["predicted_maps_reexecuted"],
                 f"{r['measured_seconds']:.4f}",
                 f"{r['predicted_seconds']:.4f}",
                 "yes" if r["output_ok"] else "NO"]
                for r in recovery["models"]
            ],
            title=(
                "single reduce failure — measured engine recovery vs "
                "sim/failure.py prediction"
            ),
        ),
        data=recovery,
    )
    (out / "BENCH_recovery.json").write_text(
        json.dumps(recovery, indent=1, sort_keys=True) + "\n"
    )

    # Speculative execution: one map hang, hedged backup (§6 extension)
    speculation = _measure_speculation()
    save(
        "speculation",
        "one injected map hang under speculative execution "
        f"(hang_timeout={speculation['hang_timeout']}s, min of "
        f"{speculation['runs']}):\n"
        f"  fault-free makespan:   {speculation['fault_free_seconds']:.3f} s\n"
        f"  with hang + backup:    "
        f"{speculation['hang_speculation_seconds']:.3f} s\n"
        f"  ratio:                 {speculation['ratio']:.2f}x  "
        f"(within 2x: {'yes' if speculation['within_2x'] else 'NO'})\n"
        f"  measured delay:        "
        f"{speculation['measured_delay_seconds']:.3f} s\n"
        f"  predicted delay bound: "
        f"{speculation['predicted_delay_seconds']:.3f} s\n"
        f"  speculative launches:  {speculation['speculations']}  "
        f"(byte-identical: {'yes' if speculation['output_ok'] else 'NO'})",
        data=speculation,
    )
    (out / "BENCH_speculation.json").write_text(
        json.dumps(speculation, indent=1, sort_keys=True) + "\n"
    )

    # Zone-map pruning: split skipping across a selectivity sweep -----
    pruning = _measure_pruning()
    low = pruning["sweep"][0]
    save(
        "pruning",
        "zone-map split skipping (clustered filter_gt workload, "
        f"{pruning['cells']:,} cells, {pruning['num_splits']} splits, "
        f"min of {pruning['runs']}):\n"
        + "\n".join(
            f"  sel {row['selectivity']:>8.5%}  "
            f"pruned {row['splits_pruned']:>2}/{pruning['num_splits']}  "
            f"record {row['record']['speedup']:5.1f}x  "
            f"columnar {row['columnar']['speedup']:5.1f}x"
            for row in pruning["sweep"]
        )
        + f"\n  low-selectivity floor (>=5x): "
        f"{'yes' if pruning['speedup_ok'] else 'NO'}  "
        f"(byte-identical: {'yes' if pruning['identical'] else 'NO'})",
        data={
            "speedup_ok": pruning["speedup_ok"],
            "identical": pruning["identical"],
            "low_record_speedup": low["record"]["speedup"],
        },
    )
    (out / "BENCH_pruning.json").write_text(
        json.dumps(pruning, indent=1, sort_keys=True) + "\n"
    )

    # Process engine: 1 -> N-core scaling on the weekly-mean workload --
    parallel = _measure_parallel()
    save(
        "parallel",
        "process-engine scaling (weekly-mean columnar workload, "
        f"{parallel['cells']:,} cells, {parallel['cpu_count']} core(s), "
        f"min of {parallel['runs']}):\n"
        f"  threaded baseline: {parallel['threaded']['seconds']:.3f} s\n"
        + "\n".join(
            f"  process x{row['workers']}: {row['seconds']:.3f} s  "
            f"({row['speedup_vs_threaded']:.2f}x vs threaded)"
            for row in parallel["scaling"]
        )
        + f"\n  >=2.5x gate at 4+ workers "
        f"({'applicable' if parallel['gate_applicable'] else 'skipped: needs >=4 cores'}): "
        f"{'yes' if parallel['speedup_ok'] else 'NO'}  "
        f"(byte-identical: {'yes' if parallel['identical'] else 'NO'})",
        data={
            "speedup_ok": parallel["speedup_ok"],
            "identical": parallel["identical"],
            "cpu_count": parallel["cpu_count"],
        },
    )
    (out / "BENCH_parallel.json").write_text(
        json.dumps(parallel, indent=1, sort_keys=True) + "\n"
    )

    # Resident service: plan-cache and concurrent-serving economics ----
    service = _measure_service()
    save(
        "service",
        "resident query service (shared session, plan cache, "
        f"{service['jobs']} mixed-plane jobs):\n"
        f"  cold plan:    {service['plan']['cold_ms']:.2f} ms\n"
        f"  cached plan:  {service['plan']['cached_ms']:.3f} ms  "
        f"({service['plan']['speedup']:.0f}x, "
        f"hit rate {service['plan']['hit_rate']:.2f})\n"
        f"  sequential round-trips: {service['sequential_seconds']:.3f} s\n"
        f"  concurrent (4 workers): {service['concurrent_seconds']:.3f} s  "
        f"({service['concurrent_vs_sequential']:.2f}x)\n"
        f"  byte-identical to oracle: "
        f"{'yes' if service['identical'] else 'NO'}  "
        f"cached faster than cold: "
        f"{'yes' if service['cached_faster'] else 'NO'}",
        data={
            "identical": service["identical"],
            "cached_faster": service["cached_faster"],
            "plan_speedup": service["plan"]["speedup"],
        },
    )
    (out / "BENCH_service.json").write_text(
        json.dumps(service, indent=1, sort_keys=True) + "\n"
    )

    bench["total_seconds"] = round(time.time() - t0, 3)
    (out / "BENCH_obs.json").write_text(
        json.dumps(bench, indent=1, sort_keys=True) + "\n"
    )
    print(
        f"all reports regenerated in {time.time() - t0:.0f}s -> {out} "
        f"(machine-readable: {out / 'BENCH_obs.json'})"
    )
    return 0


def _measure_tracing_overhead(runs: int = 3) -> dict:
    """Min-of-N engine wall time with spans/metrics on vs off."""
    import numpy as np

    from repro.mapreduce.engine import LocalEngine
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp
    from repro.query.splits import slice_splits
    from repro.scidata.generators import temperature_dataset
    from repro.sidr.planner import build_sidr_job

    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    ).compile(field.metadata)
    job, barrier, _ = build_sidr_job(
        plan, slice_splits(plan, num_splits=16), 8, data
    )

    def best(engine) -> float:
        engine.run_serial(job, barrier)  # warmup
        t = float("inf")
        for _ in range(runs):
            s = time.perf_counter()
            engine.run_serial(job, barrier)
            t = min(t, time.perf_counter() - s)
        return t

    t_off = best(LocalEngine(observability=False))
    t_on = best(LocalEngine(observability=True))

    # Third config: spans/metrics on AND the live plane attached — bus
    # with a draining subscription, progress tracker, straggler
    # detector — the full ``--live`` wiring minus terminal rendering.
    from repro.obs import (
        EventBus,
        JobObservability,
        MetricsRegistry,
        ProgressTracker,
        StragglerDetector,
    )

    engine_live = LocalEngine(observability=True)

    def best_live() -> float:
        def once() -> float:
            metrics = MetricsRegistry()
            bus = EventBus(metrics=metrics)
            obs = JobObservability(job.name, metrics=metrics, bus=bus)
            ProgressTracker(bus)
            StragglerDetector(bus, metrics=metrics)
            sub = bus.subscribe()
            s = time.perf_counter()
            engine_live.run_serial(job, barrier, obs=obs)
            elapsed = time.perf_counter() - s
            sub.drain()
            return elapsed

        once()  # warmup
        return min(once() for _ in range(runs))

    t_live = best_live()
    return {
        "runs": runs,
        "off_ms": round(t_off * 1e3, 2),
        "on_ms": round(t_on * 1e3, 2),
        "live_ms": round(t_live * 1e3, 2),
        "overhead": round(t_on / t_off - 1.0, 4),
        "live_overhead": round(t_live / t_off - 1.0, 4),
    }


def _measure_throughput(runs: int = 3) -> dict:
    """Record vs columnar data plane on the weekly-mean workload
    (``BENCH_throughput.json``).  Byte-identity is checked on the same
    runs that are timed."""
    import numpy as np

    from repro.mapreduce.engine import LocalEngine
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp
    from repro.query.splits import slice_splits
    from repro.sidr.planner import build_sidr_job
    from repro.scidata.generators import temperature_dataset

    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    ).compile(field.metadata)
    sp = slice_splits(plan, num_splits=16)
    engine = LocalEngine(observability=False)

    def best(plane: str):
        job, barrier, _ = build_sidr_job(
            plan, sp, 8, data, data_plane=plane
        )
        res = engine.run_serial(job, barrier)  # warmup + output capture
        t = float("inf")
        for _ in range(runs):
            s = time.perf_counter()
            res = engine.run_serial(job, barrier)
            t = min(t, time.perf_counter() - s)
        return t, res.all_records()

    t_rec, out_rec = best("record")
    t_col, out_col = best("columnar")
    cells = int(data.size)
    return {
        "runs": runs,
        "cells": cells,
        "identical": out_rec == out_col,
        "record": {
            "seconds": round(t_rec, 4),
            "cells_per_sec": int(cells / t_rec),
        },
        "columnar": {
            "seconds": round(t_col, 4),
            "cells_per_sec": int(cells / t_col),
        },
        "speedup": round(t_rec / t_col, 2),
    }


def _measure_recovery(fail_reduce: int = 1) -> dict:
    """Inject one after-fetch reduce failure and measure the recovery
    work of each §6 design on the real engine, next to the analytical
    single-failure prediction (``BENCH_recovery.json``)."""
    import numpy as np

    from repro.bench.workloads import sim_spec_from_plan
    from repro.faults import (
        WHEN_AFTER_FETCH,
        FaultKind,
        FaultRule,
        InjectionPlan,
        RecoveryModel,
    )
    from repro.mapreduce.engine import LocalEngine, RetryPolicy
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp
    from repro.query.splits import slice_splits
    from repro.scidata.generators import temperature_dataset
    from repro.sidr.planner import build_sidr_job
    from repro.sim.failure import predict_single_failure

    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    ).compile(field.metadata)
    splits = slice_splits(plan, num_splits=16)

    def run(engine):
        job, barrier, sidr = build_sidr_job(plan, splits, 8, data)
        return engine.run_serial(job, barrier), sidr

    baseline, sidr = run(LocalEngine())
    expected = baseline.all_records()
    spec = sim_spec_from_plan(sidr)
    fault = InjectionPlan(
        rules=(
            FaultRule(
                task="reduce",
                kind=FaultKind.TRANSIENT,
                indices=frozenset({fail_reduce}),
                times=1,
                when=WHEN_AFTER_FETCH,
            ),
        )
    )
    models = []
    for model in RecoveryModel:
        res, _ = run(
            LocalEngine(
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
                faults=fault,
                recovery=model,
            )
        )
        measured = 0.0
        if res.obs is not None:
            measured = res.obs.metrics.histogram("recovery.seconds").sum
        pred = predict_single_failure(spec, model, fail_reduce)
        models.append(
            {
                "model": model.value,
                "maps_reexecuted": res.counters.get(
                    "recovery.maps_reexecuted"
                ),
                "predicted_maps_reexecuted": pred.maps_reexecuted,
                "measured_seconds": round(measured, 6),
                "predicted_seconds": round(pred.recovery_seconds, 6),
                "output_ok": res.all_records() == expected,
            }
        )
    return {
        "fail_reduce": fail_reduce,
        "num_maps": len(splits),
        "num_reduces": 8,
        "models": models,
    }


def _measure_speculation(
    hang_map: int = 1, hang_timeout: float = 0.15, runs: int = 3
) -> dict:
    """Inject one forever-hanging map and let speculative execution
    rescue it with a hedged backup attempt; the makespan must stay well
    under 2x the fault-free run, and the mitigation delay is compared
    against the analytical ``predict_speculation`` upper bound
    (``BENCH_speculation.json``)."""
    import numpy as np

    from repro.bench.workloads import sim_spec_from_plan
    from repro.faults import FaultKind, FaultRule, InjectionPlan
    from repro.mapreduce.engine import LocalEngine, RetryPolicy
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp
    from repro.query.splits import slice_splits
    from repro.scidata.generators import temperature_dataset
    from repro.sidr.planner import build_sidr_job
    from repro.sim.failure import predict_speculation
    from repro.spec import SpeculationPolicy

    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    ).compile(field.metadata)
    splits = slice_splits(plan, num_splits=16)

    def run(engine):
        job, barrier, sidr = build_sidr_job(plan, splits, 8, data)
        s = time.perf_counter()
        res = engine.run_threaded(job, barrier)
        return time.perf_counter() - s, res, sidr

    _, base_res, sidr = run(LocalEngine())  # warmup
    expected = base_res.all_records()
    base_seconds = min(run(LocalEngine())[0] for _ in range(runs))

    def hang_engine() -> LocalEngine:
        # Fresh engine per run: the bound fault plan's `times=1` state
        # must reset so every run injects exactly one hang.
        fault = InjectionPlan(
            rules=(
                FaultRule(
                    task="map",
                    kind=FaultKind.HANG,
                    indices=frozenset({hang_map}),
                    times=1,
                ),
            )
        )
        return LocalEngine(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            faults=fault,
            speculation=SpeculationPolicy(
                hang_timeout=hang_timeout,
                heartbeat_interval=0.02,
                # Hang-flag path only: keeps `speculations` deterministic
                # (exactly one backup) for the regression baseline.
                speculate_stragglers=False,
            ),
        )

    hang_seconds = float("inf")
    speculations = cancelled = 0
    output_ok = True
    for _ in range(runs):
        t, res, _ = run(hang_engine())
        hang_seconds = min(hang_seconds, t)
        speculations = res.counters.get("task.speculations")
        cancelled = res.counters.get("task.cancelled")
        output_ok = output_ok and res.all_records() == expected
    pred = predict_speculation(
        sim_spec_from_plan(sidr), hang_map, hang_timeout=hang_timeout
    )
    return {
        "runs": runs,
        "hang_map": hang_map,
        "hang_timeout": hang_timeout,
        "fault_free_seconds": round(base_seconds, 4),
        "hang_speculation_seconds": round(hang_seconds, 4),
        "ratio": round(hang_seconds / base_seconds, 3),
        "within_2x": bool(hang_seconds < 2.0 * base_seconds),
        "measured_delay_seconds": round(
            max(0.0, hang_seconds - base_seconds), 4
        ),
        "predicted_delay_seconds": round(pred.delay_seconds, 4),
        "speculations": speculations,
        "cancelled": cancelled,
        "output_ok": output_ok,
    }


def _measure_pruning(runs: int = 3) -> dict:
    """Selectivity sweep for zone-map split pruning on a spatially
    clustered filter_gt workload (``BENCH_pruning.json``).

    Hot cells pack a contiguous prefix of the array, so dropping the
    selectivity concentrates them in fewer extraction instances and
    zone maps prune more splits.  Each point times prune off vs on for
    both data planes and checks byte-identity on the same runs; the
    acceptance gate is >=5x on the record plane at <=0.1% selectivity.
    """
    import numpy as np

    from repro.mapreduce.engine import LocalEngine
    from repro.query.language import StructuralQuery
    from repro.query.operators import ThresholdFilterOp
    from repro.query.splits import slice_splits
    from repro.scidata.metadata import DatasetMetadata, Dimension, Variable
    from repro.scidata.zonemaps import build_zone_map
    from repro.sidr.planner import build_sidr_job

    shape, extraction, num_splits, reduces = (250, 40, 40), (5, 40, 40), 50, 8
    selectivities = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    meta = DatasetMetadata(
        dimensions=(
            Dimension("t", shape[0]),
            Dimension("y", shape[1]),
            Dimension("x", shape[2]),
        ),
        variables=(Variable("v", "double", ("t", "y", "x")),),
    )
    plan = StructuralQuery(
        variable="v", extraction_shape=extraction,
        operator=ThresholdFilterOp(500.0),
    ).compile(meta)
    splits = slice_splits(plan, num_splits=num_splits)
    engine = LocalEngine(observability=False)

    def best(data, plane, prune):
        zone_map = (
            build_zone_map("v", data, tile_shape=extraction) if prune
            else None
        )
        job, barrier, sidr = build_sidr_job(
            plan, splits, reduces, data,
            data_plane=plane, prune=prune, zone_map=zone_map,
        )
        res = engine.run_serial(job, barrier)  # warmup + output capture
        t = float("inf")
        for _ in range(runs):
            s = time.perf_counter()
            res = engine.run_serial(job, barrier)
            t = min(t, time.perf_counter() - s)
        pruned = sidr.pruning.num_pruned if sidr.pruning is not None else 0
        return t, res.all_records(), pruned

    sweep = []
    identical = True
    for sel in selectivities:
        rng = np.random.default_rng(11)
        data = rng.uniform(0.0, 1.0, shape)
        data.reshape(-1)[: max(1, round(sel * data.size))] = 1000.0
        point: dict = {"selectivity": sel}
        for plane in ("record", "columnar"):
            t_full, out_full, _ = best(data, plane, False)
            t_pruned, out_pruned, pruned = best(data, plane, True)
            identical = identical and out_full == out_pruned
            point["splits_pruned"] = pruned
            point[plane] = {
                "seconds_full": round(t_full, 4),
                "seconds_pruned": round(t_pruned, 4),
                "speedup": round(t_full / t_pruned, 2),
            }
        sweep.append(point)
    speedup_ok = all(
        p["record"]["speedup"] >= 5.0
        for p in sweep
        if p["selectivity"] <= 1e-3
    )
    return {
        "runs": runs,
        "cells": int(np.prod(shape)),
        "num_splits": num_splits,
        "threshold": 500.0,
        "sweep": sweep,
        "identical": identical,
        "speedup_ok": speedup_ok,
    }


def _measure_parallel(runs: int = 3, worker_counts=(1, 2, 4)) -> dict:
    """Process-engine scaling curve on the weekly-mean columnar
    workload (``BENCH_parallel.json``).

    Reports seconds and speedup-vs-``run_threaded`` for worker pools of
    1 -> N processes.  The acceptance gate (>= 2.5x over threaded at 4+
    workers) is only *applicable* on machines with >= 4 cores — the
    result records ``cpu_count`` so a 1-core CI box publishes an honest
    curve (fork + segment-file overhead with nothing to parallelize
    against) without pretending to demonstrate scaling it physically
    cannot.  Byte-identity vs the threaded run is checked on the same
    runs that are timed.
    """
    import os

    import numpy as np

    from repro.mapreduce.engine import LocalEngine
    from repro.query.language import StructuralQuery
    from repro.query.operators import MeanOp
    from repro.query.splits import slice_splits
    from repro.scidata.generators import temperature_dataset
    from repro.sidr.planner import build_sidr_job

    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    plan = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    ).compile(field.metadata)
    sp = slice_splits(plan, num_splits=16)

    def job():
        j, barrier, _ = build_sidr_job(
            plan, sp, 8, data, data_plane="columnar"
        )
        return j, barrier

    def best(engine, mode):
        run = getattr(engine, mode)
        j, barrier = job()
        res = run(j, barrier)  # warmup (forks the pool, touches caches)
        t = float("inf")
        for _ in range(runs):
            j, barrier = job()
            s = time.perf_counter()
            res = run(j, barrier)
            t = min(t, time.perf_counter() - s)
        return t, res.all_records()

    t_thr, out_thr = best(
        LocalEngine(observability=False), "run_threaded"
    )
    scaling = []
    identical = True
    for w in worker_counts:
        eng = LocalEngine(
            observability=False,
            map_workers=w,
            reduce_workers=max(1, w // 2) if w > 1 else 1,
        )
        t, out = best(eng, "run_processes")
        identical = identical and out == out_thr
        scaling.append(
            {
                "workers": w,
                "seconds": round(t, 4),
                "speedup_vs_threaded": round(t_thr / t, 2),
            }
        )

    cpu_count = os.cpu_count() or 1
    gate_applicable = cpu_count >= 4
    at_four = [
        row["speedup_vs_threaded"]
        for row in scaling
        if row["workers"] >= 4
    ]
    speedup_ok = (not gate_applicable) or (
        bool(at_four) and max(at_four) >= 2.5
    )
    return {
        "runs": runs,
        "cells": int(data.size),
        "cpu_count": cpu_count,
        "threaded": {"seconds": round(t_thr, 4)},
        "scaling": scaling,
        "identical": identical,
        "gate_applicable": gate_applicable,
        "speedup_ok": speedup_ok,
    }


def _measure_service(runs: int = 5, jobs: int = 8) -> dict:
    """Resident-service economics (``BENCH_service.json``).

    Two measurements over one shared open dataset:

    * **plan cache** — per-submission planning time, cold (cache
      cleared) vs cached, using the service's own measured
      ``plan_seconds``.  The acceptance gate is the boolean
      ``cached_faster``; the raw speedup is machine-noisy and only
      banded loosely.
    * **serving** — wall-clock for ``jobs`` mixed-plane submissions
      served strictly sequentially (submit, wait, repeat) vs submitted
      as one concurrent batch against a 4-worker queue.  On a 1-core
      box concurrency is bookkeeping, not speedup, so the ratio is
      reported, not gated.

    Every served result is digest-checked against the brute-force
    oracle; ``identical`` must stay exactly true.
    """
    import numpy as np

    from repro.scidata.generators import temperature_dataset
    from repro.service import (
        QueryRequest,
        QueryService,
        StressDriver,
        oracle_for_request,
    )

    field = temperature_dataset(days=364, lat=20, lon=20, seed=5)
    data = field.arrays["temperature"].astype(np.float64)

    def request(i: int = 0) -> QueryRequest:
        return QueryRequest(
            dataset="temp", variable="temperature", extract=(7, 5, 2),
            operator="mean", splits=8, reduces=4, prune=False,
            data_plane="columnar" if i % 2 else "record",
            engine="threaded",
        )

    # Plan cache: cold vs cached planning time -------------------------
    with QueryService(workers=1, map_workers=2, reduce_workers=2) as svc:
        svc.register_array("temp", "temperature", data)
        cold = float("inf")
        for _ in range(runs):
            svc.plan_cache.clear()
            doc = svc.result(svc.submit(request()), timeout=120)
            assert doc["plan_cache_hit"] is False
            cold = min(cold, doc["plan_seconds"])
        cached = float("inf")
        for _ in range(runs):
            doc = svc.result(svc.submit(request()), timeout=120)
            assert doc["plan_cache_hit"] is True
            cached = min(cached, doc["plan_seconds"])

    # Serving: sequential round-trips vs one concurrent batch ----------
    batch = [request(i) for i in range(jobs)]
    with QueryService(workers=1, map_workers=2, reduce_workers=2) as svc:
        svc.register_array("temp", "temperature", data)
        oracle_digests = [oracle_for_request(svc, r)[1] for r in batch]
        s = time.perf_counter()
        seq_docs = [svc.result(svc.submit(r), timeout=120) for r in batch]
        sequential = time.perf_counter() - s
    with QueryService(workers=4, map_workers=2, reduce_workers=2) as svc:
        svc.register_array("temp", "temperature", data)
        driver = StressDriver(svc)
        s = time.perf_counter()
        outcome = driver.run_batch(batch, timeout=120)
        concurrent = time.perf_counter() - s

    identical = (
        [d["digest"] for d in seq_docs] == oracle_digests
        and outcome.all_done
        and outcome.all_identical
    )
    return {
        "runs": runs,
        "jobs": jobs,
        "cells": int(data.size),
        "plan": {
            "cold_ms": round(cold * 1e3, 3),
            "cached_ms": round(cached * 1e3, 4),
            "speedup": round(cold / cached, 1) if cached else float("inf"),
            "hit_rate": 1.0,  # by construction: identical resubmissions
        },
        "sequential_seconds": round(sequential, 4),
        "concurrent_seconds": round(concurrent, 4),
        "concurrent_vs_sequential": round(sequential / concurrent, 2),
        "identical": identical,
        "cached_faster": cached < cold,
    }


if __name__ == "__main__":
    raise SystemExit(main())
