"""§6 future-work bench: failure-recovery designs on Query 1.

The paper hypothesizes that using dependency information to re-execute
only I_l on a reduce failure — instead of persisting all intermediate
data — wins "in the non-failure case".  This bench quantifies the
expected machine-seconds of each design across failure probabilities and
reports the break-even point.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.workloads import SystemVariant, query1_workload, sim_spec
from repro.sim.failure import (
    RecoveryModel,
    breakeven_failure_prob,
    evaluate_recovery,
)

PROBS = (0.0, 0.001, 0.01, 0.05, 0.2)


@pytest.fixture(scope="module")
def spec():
    wl = query1_workload()
    return sim_spec(wl, SystemVariant.SIDR, 176)


def test_failure_recovery_sweep(benchmark, spec, record_report):
    def run():
        rows = []
        for p in PROBS:
            vals = [
                evaluate_recovery(spec, m, reduce_failure_prob=p).expected_total
                for m in (
                    RecoveryModel.PERSISTED,
                    RecoveryModel.REEXECUTE_ALL,
                    RecoveryModel.REEXECUTE_DEPS,
                )
            ]
            rows.append([p] + vals)
        return rows, breakeven_failure_prob(spec)

    rows, p_star = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["P(reduce fails)", "persisted (mach-s)", "re-exec all (mach-s)",
         "re-exec I_l (mach-s)"],
        [[p, a, b, c] for p, a, b, c in rows],
        title=(
            "§6 ablation — expected failure-handling machine-seconds, "
            f"Query 1 r=176 (break-even P = {p_star:.3f})"
        ),
    )
    record_report("ablation_failure_recovery", table)
    # The paper's hypothesis: at realistic failure rates (<= 1%),
    # dependency re-execution beats persisting all intermediate data.
    by_p = {p: (a, b, c) for p, a, b, c in rows}
    for p in (0.0, 0.001, 0.01):
        persisted, _all, deps = by_p[p]
        assert deps < persisted
    # And it always beats blind re-execution.
    for p, (_persisted, all_, deps) in by_p.items():
        if p > 0:
            assert deps < all_ / 10


def test_breakeven_is_meaningfully_high(spec):
    """Persistence only pays once reduce failures are frequent."""
    assert breakeven_failure_prob(spec) > 0.05
