"""Figure 11: Query 2 (3-sigma filter) reduce completion.

Paper (§4.1): each reduce carries almost no data, so completion curves
approach optimal with fewer reduce tasks than Query 1, and "the reduction
in total query time is much smaller than it was for Query 1" — the
query's nature bounds SIDR's opportunity.
"""

import pytest

from repro.bench.figures import fig10_reduce_scaling, fig11_filter_query
from repro.bench.report import format_series, format_table

COUNTS = (22, 66, 176)


@pytest.fixture(scope="module")
def fig11():
    return fig11_filter_query(sidr_reduce_counts=COUNTS, scale=1)


def test_fig11_benchmark(benchmark, record_report):
    result = benchmark.pedantic(
        fig11_filter_query,
        kwargs={"sidr_reduce_counts": COUNTS, "scale": 1},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            "SciHadoop r=22",
            result.summaries["SH-22"]["first_result"],
            result.summaries["SH-22"]["makespan"],
        ]
    ]
    for r in COUNTS:
        s = result.summaries[f"SS-{r}"]
        rows.append([f"SIDR r={r}", s["first_result"], s["makespan"]])
    table = format_table(
        ["configuration", "first result(s)", "total(s)"],
        rows,
        title="Figure 11 — Query 2 (filter) reduce completion",
    )
    series = format_series(
        {k: c for k, c in result.curves.items() if "Reduce" in k},
        title="output availability over time",
    )
    record_report("fig11_filter_query", table + "\n\n" + series)
    # Reduce work is tiny: even r=22 ends close to its map phase.
    s22 = result.summaries["SS-22"]
    assert s22["makespan"] - s22["last_map_finish"] < 0.1 * s22["makespan"]


def test_less_improvement_than_query1(fig11):
    """SIDR's total-time gain on Query 2 < its gain on Query 1 (§4.1)."""
    q1 = fig10_reduce_scaling(sidr_reduce_counts=(176,), scale=1)
    gain_q1 = (
        q1.summaries["SH-22"]["makespan"] / q1.summaries["SS-176"]["makespan"]
    )
    gain_q2 = (
        fig11.summaries["SH-22"]["makespan"]
        / fig11.summaries["SS-176"]["makespan"]
    )
    assert gain_q2 < gain_q1


def test_fewer_tasks_reach_optimal(fig11):
    """Curves approach optimal with fewer reduce tasks than Query 1: the
    r=66 and r=176 makespans are nearly identical."""
    s = fig11.summaries
    assert s["SS-176"]["makespan"] == pytest.approx(
        s["SS-66"]["makespan"], rel=0.15
    )


def test_first_results_still_early(fig11):
    s = fig11.summaries
    assert s["SS-22"]["first_result"] < 0.5 * s["SH-22"]["first_result"]
