"""Ablation: coordinate splits vs byte-oriented record reading.

Measures, on real NCLite files, what the Hadoop baseline pays for
structure-oblivious byte splits: the fraction of its reads that land
outside its own block (straddling records -> remote fetches).  This is
the measured grounding of the simulator's Hadoop-variant locality
constant (SciHadoop's coordinate splits read exactly their slab: zero
boundary IO by construction).
"""

import pytest

from repro.bench.report import format_table
from repro.query.byterange import measure_amplification
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp
from repro.scidata.generators import temperature_dataset


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    path = tmp_path_factory.mktemp("amp") / "t.nc"
    # 360 days so both 1- and 6-row records divide evenly.
    field = temperature_dataset(days=360, lat=60, lon=40, seed=9)
    field.write(path).close()
    q = StructuralQuery(
        variable="temperature", extraction_shape=(6, 5, 1), operator=MeanOp()
    )
    return str(path), q.compile(field.metadata)


def test_byte_reader_locality_loss(benchmark, setup, record_report):
    path, plan = setup
    row_bytes = 60 * 40 * 4

    def run():
        rows = []
        for rows_per_record, label in [(1, "1 row"), (6, "1 extraction band")]:
            for factor, split_label in [(4, "4-row"), (9, "9-row"), (20, "20-row")]:
                stats = measure_amplification(
                    path,
                    plan,
                    split_bytes=row_bytes * factor,
                    rows_per_record=rows_per_record,
                )
                rows.append(
                    [
                        label,
                        split_label,
                        stats.amplification,
                        stats.remote_fraction,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["record size", "split size", "amplification", "remote fraction"],
        rows,
        title=(
            "Ablation — byte-oriented (Hadoop-style) reading: boundary IO "
            "vs record/split geometry (coordinate splits: 0 by construction)"
        ),
    )
    record_report("ablation_byte_reader", table)
    # Bigger records relative to splits -> more boundary (remote) IO.
    by_key = {(r[0], r[1]): r for r in rows}
    assert by_key[("1 extraction band", "4-row")][3] > by_key[("1 row", "4-row")][3]
    # Aligned cases (split a multiple of record) pay nothing.
    assert by_key[("1 row", "4-row")][3] == 0.0


def test_coordinate_reader_exact_io(setup):
    """The SciHadoop-style coordinate reader touches exactly its slab —
    zero boundary bytes, measured through Dataset IO stats."""
    from repro.query.splits import slice_splits
    from repro.scidata.dataset import open_dataset

    path, plan = setup
    splits = slice_splits(plan, num_splits=10)
    with open_dataset(path) as ds:
        total = 0
        for sp in splits:
            before = ds.io_stats.bytes_read
            data = ds.read_slab(plan.variable, sp.slabs[0])
            total += ds.io_stats.bytes_read - before
            assert data.size * 4 == sp.length_bytes
        assert total == plan.covered.volume * plan.item_bytes
