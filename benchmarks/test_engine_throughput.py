"""Engine micro-benchmarks: real-execution throughput.

Not a paper experiment — a maintenance benchmark for the in-process
engine itself, so regressions in the record-reader/shuffle/merge path
show up.  Measures the paper's running example (weekly means) and a
holistic median end to end on in-memory data.
"""

import numpy as np
import pytest

from repro.mapreduce.engine import LocalEngine
from repro.query.language import StructuralQuery
from repro.query.operators import MeanOp, MedianOp
from repro.query.splits import slice_splits
from repro.scidata.generators import temperature_dataset
from repro.sidr.planner import build_sidr_job


@pytest.fixture(scope="module")
def workload():
    field = temperature_dataset(days=364, lat=40, lon=40, seed=3)
    data = field.arrays["temperature"].astype(np.float64)
    return field, data


def _run(field, data, op, reduces=8, splits=16, data_plane="record"):
    q = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=op
    )
    plan = q.compile(field.metadata)
    sp = slice_splits(plan, num_splits=splits)
    job, barrier, _ = build_sidr_job(
        plan, sp, reduces, data, data_plane=data_plane
    )
    return LocalEngine().run_serial(job, barrier)


@pytest.mark.parametrize("plane", ["record", "columnar"])
def test_weekly_mean_throughput(benchmark, workload, plane):
    field, data = workload
    result = benchmark(lambda: _run(field, data, MeanOp(), data_plane=plane))
    assert result.counters.get("map.input.records") > 0
    benchmark.extra_info["data_plane"] = plane
    benchmark.extra_info["cells"] = int(data.size)
    benchmark.extra_info["cells_per_sec"] = int(
        data.size / benchmark.stats["mean"]
    )


def test_planes_byte_identical(workload):
    """The speedup must not change a single output bit."""
    field, data = workload
    a = _run(field, data, MeanOp(), data_plane="record")
    b = _run(field, data, MeanOp(), data_plane="columnar")
    assert b.counters.get("plane.batched.instances") > 0
    assert a.all_records() == b.all_records()


def test_median_throughput(benchmark, workload):
    """Holistic operator: every cell value crosses the shuffle."""
    field, data = workload
    result = benchmark(lambda: _run(field, data, MedianOp()))
    assert result.counters.get("reduce.input.groups") == 52 * 8 * 20


def test_threaded_vs_serial_same_work(workload):
    field, data = workload
    q = StructuralQuery(
        variable="temperature", extraction_shape=(7, 5, 2), operator=MeanOp()
    )
    plan = q.compile(field.metadata)
    sp = slice_splits(plan, num_splits=16)
    job, barrier, _ = build_sidr_job(plan, sp, 8, data)
    eng = LocalEngine(map_workers=4, reduce_workers=3)
    a = eng.run_serial(job, barrier)
    b = eng.run_threaded(job, barrier)
    assert a.all_records() == b.all_records()
