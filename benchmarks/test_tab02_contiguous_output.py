"""Table 2: individual reduce write time and size scaling (§4.4).

Paper (laptop-scaled here): with the per-task data fixed, a sentinel-file
reduce write grows with the *total* output — 6 s / 494 MB at 20 reduce
tasks doubling to 24.2 s / 1,976 MB at 80 — while SIDR's contiguous write
is constant (0.3 s / 24.8 MB).  We reproduce the scaling law, not the
absolute 2013-disk numbers: sentinel time and size double per row; the
SIDR row is flat and far below all of them.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.tables import (
    coordinate_pair_overhead,
    table2_reduce_write_scaling,
)

REDUCE_COUNTS = (20, 40, 80)
CELLS_PER_TASK = 262_144  # 2 MiB of doubles per task at laptop scale


@pytest.fixture(scope="module")
def rows(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tab2")
    return table2_reduce_write_scaling(
        str(tmp), reduce_counts=REDUCE_COUNTS, cells_per_task=CELLS_PER_TASK,
        runs=3,
    )


def test_table2_benchmark(benchmark, tmp_path, record_report):
    rows = benchmark.pedantic(
        table2_reduce_write_scaling,
        args=(str(tmp_path),),
        kwargs={
            "reduce_counts": REDUCE_COUNTS,
            "cells_per_task": CELLS_PER_TASK,
            "runs": 3,
        },
        rounds=1,
        iterations=1,
    )
    paper = {
        ("sentinel", 20): (6.0, 494.0),
        ("sentinel", 40): (11.4, 988.0),
        ("sentinel", 80): (24.2, 1976.0),
        ("sidr-contiguous", 80): (0.3, 24.8),
    }
    out = []
    for r in rows:
        p = paper.get((r.strategy, r.total_reduces), ("-", "-"))
        out.append(
            [
                r.strategy,
                r.total_reduces,
                p[0],
                r.seconds_mean,
                p[1],
                r.file_size_bytes / (1024 * 1024),
                r.seeks,
            ]
        )
    table = format_table(
        ["strategy", "reduces", "paper time(s)", "ours time(s)",
         "paper size(MB)", "ours size(MB)", "seeks"],
        out,
        title="Table 2 — reduce write time/size scaling (laptop-scaled)",
    )
    record_report("tab02_contiguous_output", table)
    sent = [r for r in rows if r.strategy == "sentinel"]
    sidr = [r for r in rows if r.strategy == "sidr-contiguous"][0]
    # Size doubles per row; SIDR's file is constant and small.
    assert sent[1].file_size_bytes == pytest.approx(
        2 * sent[0].file_size_bytes, rel=0.01
    )
    assert sidr.file_size_bytes < sent[0].file_size_bytes / 4


def test_sentinel_size_scaling_law(rows):
    sent = [r for r in rows if r.strategy == "sentinel"]
    assert sent[2].file_size_bytes == pytest.approx(
        4 * sent[0].file_size_bytes, rel=0.01
    )


def test_sentinel_time_grows(rows):
    """Write time grows with the total output (the paper's 6 -> 24.2 s);
    filesystem caching adds noise, so require growth, not exact 4x."""
    sent = [r for r in rows if r.strategy == "sentinel"]
    assert sent[2].seconds_mean > 1.5 * sent[0].seconds_mean


def test_sidr_faster_than_every_sentinel_row(rows):
    sent = [r for r in rows if r.strategy == "sentinel"]
    sidr = [r for r in rows if r.strategy == "sidr-contiguous"][0]
    assert all(sidr.seconds_mean < s.seconds_mean for s in sent)
    assert sidr.seeks == 0


def test_coordinate_pair_constant_overhead(tmp_path):
    """§4.4's alternative: per-value overhead is a constant scalar."""
    ratio = coordinate_pair_overhead(str(tmp_path))
    assert 2.0 < ratio < 4.0
