#!/usr/bin/env python3
"""Pipelined computations over early results (paper §6, future work).

"We will research integrating SIDR's ability to produce early, orderable,
correct results for portions of the total output into pipe-lined
computations."

Scenario: a two-stage climate analysis over a year of daily temperatures.

* Stage 1 — weekly means at 5x latitude down-sampling (the paper's
  running example; extraction {7, 5, 1}).
* Stage 2 — monthly (4-week) maxima of those weekly means (extraction
  {4, 1, 1} over stage 1's output space).

Because SIDR's stage-1 keyblocks commit early and are *correct* — not
estimates, the §5 contrast with Hadoop Online, where "any subsequent
computations that consume HOP's output must be re-run after each
estimate" — stage-2 map tasks start the moment the keyblocks they read
are final, well before stage 1 finishes.  The interleaving log printed
below is the evidence.

Run:  python examples/pipelined_stages.py
"""

import numpy as np

from repro import StructuralQuery, get_operator, temperature_dataset
from repro.sidr.pipeline import PipelinedQuery


def main() -> None:
    field = temperature_dataset(days=365, lat=40, lon=30, seed=17)
    data = field.arrays["temperature"].astype(np.float64)

    stage1 = StructuralQuery(
        variable="temperature",
        extraction_shape=(7, 5, 1),
        operator=get_operator("mean"),
    ).compile(field.metadata)

    stage2 = StructuralQuery(
        variable="weekly_mean",
        extraction_shape=(4, 1, 1),
        operator=get_operator("max"),
    )

    pipe = PipelinedQuery(
        stage1,
        stage2,
        stage1_reduces=6,
        stage2_reduces=3,
        stage1_splits=16,
        stage2_splits=6,
    )
    print("== Pipeline ==")
    print(f"  stage 1: {stage1.describe()}")
    print(f"  stage 2: {pipe.stage2.describe()}")

    result = pipe.run(data)
    oracle = pipe.reference(data)
    worst = max(
        abs(result.stage2_outputs[k] - oracle[k]) for k in oracle
    )
    assert worst < 1e-9
    print(f"\nfinal output matches the composed serial oracle on all "
          f"{len(oracle)} cells")

    early = result.stage2_maps_before_stage1_done()
    total_s2_maps = len(pipe.s2_splits)
    print(f"\n== Pipelining evidence ==")
    print(f"  {early}/{total_s2_maps} stage-2 map tasks ran BEFORE "
          f"stage 1's final keyblock committed")

    print("\n== Interleaving log (stage-1 keyblocks vs stage-2 work) ==")
    for ev in result.events:
        tag = {1: "stage1", 2: "STAGE2"}[ev.stage]
        print(f"  [{ev.seq:3d}] {tag} {ev.kind} {ev.index}")


if __name__ == "__main__":
    main()
