#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Figure 1/2 temperature dataset (daily measurements over a
lat/lon grid, written as an NCLite file), issues the weekly-average
down-sampling query with extraction shape {7, 5, 1} (§3 Area 2), and runs
it three ways:

1. a direct serial oracle (plain numpy),
2. a stock-Hadoop configuration (hash partitioner + global barrier),
3. SIDR (partition+, dependency barriers, count-annotation validation),

then shows what SIDR bought: early reduce starts, far fewer shuffle
connections, and dense contiguous output regions.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    GlobalBarrier,
    HashPartitioner,
    JobConf,
    LocalEngine,
    StructuralQuery,
    build_sidr_job,
    get_operator,
    make_reader_factory,
    open_dataset,
    slice_splits,
    temperature_dataset,
)
from repro.mapreduce.mapper import ChunkAggregateMapper
from repro.mapreduce.reducer import AggregateReducer


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sidr-quickstart-"))

    # ----------------------------------------------------------------- #
    # 1. A year of daily temperatures (shrunk grid for a fast demo).
    # ----------------------------------------------------------------- #
    field = temperature_dataset(days=365, lat=50, lon=40, seed=7)
    path = workdir / "temperature.nc"
    ds = field.write(path)
    print("== Dataset (paper Figure 1 metadata style) ==")
    print(ds.to_cdl())

    # ----------------------------------------------------------------- #
    # 2. The structural query: weekly means, 5x latitude down-sample.
    # ----------------------------------------------------------------- #
    query = StructuralQuery(
        variable="temperature",
        extraction_shape=(7, 5, 1),
        operator=get_operator("mean"),
    )
    plan = query.compile(ds.metadata)
    print("\n== Query plan ==")
    print(plan.describe())

    splits = slice_splits(plan, num_splits=16)
    data = field.arrays["temperature"].astype(np.float64)
    oracle = plan.reference_output(data)
    engine = LocalEngine(map_workers=4, reduce_workers=3)

    # ----------------------------------------------------------------- #
    # 3a. Stock Hadoop: hash partitioner + global barrier.
    # ----------------------------------------------------------------- #
    op = plan.operator
    stock_job = JobConf(
        name="stock-weekly-mean",
        splits=splits,
        reader_factory=make_reader_factory(str(path), plan),
        mapper_factory=lambda: ChunkAggregateMapper(op),
        reducer_factory=lambda: AggregateReducer(op),
        partitioner=HashPartitioner(),
        num_reduce_tasks=6,
    )
    stock = engine.run_threaded(stock_job, GlobalBarrier())

    # ----------------------------------------------------------------- #
    # 3b. SIDR: partition+, dependency barriers, count validation.
    # ----------------------------------------------------------------- #
    sidr_job, barrier, sidr_plan = build_sidr_job(
        plan, splits, num_reduce_tasks=6, source=str(path)
    )
    sidr = engine.run_threaded(sidr_job, barrier)

    # ----------------------------------------------------------------- #
    # 4. Same answers, better execution.
    # ----------------------------------------------------------------- #
    for name, res in [("stock", stock), ("SIDR", sidr)]:
        got = dict(res.all_records())
        worst = max(abs(got[k] - oracle[k]) for k in oracle)
        assert worst < 1e-9, f"{name} diverged from the oracle"
    print("\n== Correctness ==")
    print(f"both configurations match the serial oracle on all "
          f"{len(oracle)} output cells")

    print("\n== What SIDR changed ==")
    print(f"  shuffle connections : stock {stock.shuffle_connections:4d}  "
          f"(every reduce contacts every map)")
    print(f"                        SIDR  {sidr.shuffle_connections:4d}  "
          f"(only actual dependencies, paper Table 3)")
    print(f"  early reduce starts : stock {stock.counters.get('barrier.early.starts')}  "
          f"(global barrier, Figure 4 left)")
    print(f"                        SIDR  {sidr.counters.get('barrier.early.starts')}  "
          f"(dependency barriers, Figure 4 right)")

    print("\n== Contiguous output regions (paper §4.4) ==")
    for l in range(sidr_plan.num_reduce_tasks):
        regions = ", ".join(
            f"corner={list(s.corner)} shape={list(s.shape)}"
            for s in sidr_plan.output_region(l)
        )
        print(f"  reduce {l}: {regions}")

    ds.close()
    print(f"\nworkspace: {workdir}")


if __name__ == "__main__":
    main()
