#!/usr/bin/env python3
"""Query 1 at paper scale on the simulated cluster (Figures 9 & 10).

Replays the paper's headline experiment: a median query over the 348 GB
windspeed dataset {7200, 360, 720, 50} with extraction shape
{2, 36, 36, 10}, on the simulated 24-worker cluster (4 map + 3 reduce
slots per node, 128 MB splits -> 2,781 map tasks), under all three
systems and then with SIDR's reduce count swept.

The printed series correspond to the paper's "Fraction of Total Output
Available" axes; the summary lines carry the numbers quoted in §4.1.

Run:  python examples/windspeed_median_sim.py         (~20 s)
      python examples/windspeed_median_sim.py --fast  (1/10 scale, ~3 s)
"""

import sys

from repro.bench.figures import fig09_task_completion, fig10_reduce_scaling
from repro.bench.report import format_series


def main() -> None:
    scale = 10 if "--fast" in sys.argv else 1
    counts = (22, 66, 176) if scale > 1 else (22, 66, 176, 528)

    print("=== Figure 9: Hadoop vs SciHadoop vs SIDR, 22 reduce tasks ===")
    fig9 = fig09_task_completion(num_reduces=22, scale=scale)
    print(
        format_series(
            {k: c for k, c in fig9.curves.items() if k.startswith("Reduce")},
            title="reduce-task output availability over time",
        )
    )
    for label, name in [("H", "Hadoop"), ("SH", "SciHadoop"), ("SS", "SIDR")]:
        s = fig9.summaries[label]
        print(
            f"  {name:10s} first result {s['first_result']:7.0f}s   "
            f"complete {s['makespan']:7.0f}s   "
            f"connections {int(s['connections']):,}"
        )
    print(
        f"  -> SIDR vs Hadoop speedup: "
        f"{fig9.summaries['H']['makespan'] / fig9.summaries['SS']['makespan']:.2f}x"
    )

    print("\n=== Figure 10: SIDR reduce-count scaling ===")
    fig10 = fig10_reduce_scaling(sidr_reduce_counts=counts, scale=scale)
    print(
        format_series(
            {k: c for k, c in fig10.curves.items() if k.startswith("Reduce")},
            title="reduce-task output availability over time",
        )
    )
    for r in counts:
        s = fig10.summaries[f"SS-{r}"]
        print(
            f"  SIDR r={r:4d}: first {s['first_result']:6.0f}s  "
            f"complete {s['makespan']:6.0f}s  "
            f"early reduces {int(s['early_reduces'])}"
        )
    print(
        f"  -> best SIDR vs SciHadoop: "
        f"{fig10.notes['sidr_best_vs_scihadoop']:.2f}x "
        f"(paper: 1.29x at 528 reduce tasks)"
    )


if __name__ == "__main__":
    main()
