#!/usr/bin/env python3
"""Extending SIDR with a user-defined structural operator.

The operator protocol is three methods (map-side fold, associative
combine, reduce-side finalize) plus the source-count bookkeeping that
keeps the §3.2.1 validation working.  This example builds **ArgMaxOp**:
for each extraction-shape instance, the *global coordinate* of its
hottest cell — e.g. "where exactly was the weekly temperature peak in
each latitude band?"

The interesting wrinkle: chunks arrive as flattened cells of a *split's
portion* of an instance, so the operator cannot recover coordinates from
the chunk alone.  The solution mirrors how real SciHadoop operators
work: the mapper wraps chunks with their region geometry before folding
(a RegionChunk), which the chunked record reader supports via a custom
mapper.

Run:  python examples/custom_operator.py
"""

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro import LocalEngine, StructuralQuery, slice_splits, temperature_dataset
from repro.arrays.slab import Slab
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.types import KeyValue
from repro.query.operators import Chunk, Partial, StructuralOperator
from repro.query.recordreader import StructuralRecordReader
from repro.sidr.planner import build_sidr_job


class ArgMaxOp(StructuralOperator):
    """Per instance: (max value, global coordinate of that value).

    Partial state is ``(value, coord)``; combining keeps the larger —
    associative and commutative, so combiner-safe.  Ties break toward
    the smaller coordinate for determinism.
    """

    name = "argmax"

    def map_partial(self, chunk: Chunk) -> Partial:
        # Expects a region-annotated chunk (see RegionMapper below).
        region: Slab = chunk.region  # type: ignore[attr-defined]
        data = np.asarray(chunk.data).reshape(region.shape)
        flat_idx = int(np.argmax(data))
        rel = np.unravel_index(flat_idx, region.shape)
        coord = tuple(int(c + o) for c, o in zip(rel, region.corner))
        return Partial((float(data.reshape(-1)[flat_idx]), coord),
                       chunk.source_count)

    def combine(self, partials: Sequence[Partial]) -> Partial:
        best = max(
            (p.state for p in partials),
            key=lambda s: (s[0], tuple(-c for c in s[1])),
        )
        return Partial(best, sum(p.source_count for p in partials))

    def finalize(self, partial: Partial) -> dict:
        value, coord = partial.state
        return {"value": value, "at": coord}

    def reference(self, values: np.ndarray) -> Any:  # oracle for tests
        raise NotImplementedError(
            "argmax needs coordinates; use the explicit oracle below"
        )


@dataclass(frozen=True)
class RegionChunk(Chunk):
    """A chunk that remembers where its cells came from."""

    region: Slab = None  # type: ignore[assignment]


class RegionMapper(Mapper):
    """Re-reads each instance region's geometry and folds with ArgMaxOp.

    The stock ``StructuralRecordReader`` flattens chunks; this mapper
    variant keeps the geometry by re-deriving each emitted chunk's region
    from the plan (instance ∩ split), then applies ``map_partial``.
    """

    def __init__(self, plan, split, op):
        self._plan = plan
        self._split = split
        self._op = op

    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        # `value` is the reader's flat Chunk; recover its region.
        region = self._plan.instance_region(key)
        for slab in self._split.slabs:
            part = region.intersect(slab.intersect(self._plan.covered))
            if part.is_empty or part.volume != value.source_count:
                continue
            rc = RegionChunk(value.data, value.source_count, region=part)
            yield (key, self._op.map_partial(rc))
            return
        raise RuntimeError("could not locate chunk region")


def main() -> None:
    field = temperature_dataset(days=364, lat=30, lon=20, seed=33)
    data = field.arrays["temperature"].astype(np.float64)

    op = ArgMaxOp()
    query = StructuralQuery(
        variable="temperature",
        extraction_shape=(7, 10, 20),   # weekly, per 10-lat band, all lons
        operator=op,
    )
    plan = query.compile(field.metadata)
    print("== Custom-operator query ==")
    print(plan.describe())

    splits = slice_splits(plan, num_splits=12)
    job, barrier, sidr = build_sidr_job(plan, splits, 4, data)
    # Swap in the region-aware mapper (reader stays stock).
    split_by_index = {sp.index: sp for sp in splits}
    original_reader = job.reader_factory

    class _PerSplitMapper(Mapper):
        """The engine builds one mapper per task but doesn't tell it the
        split; thread it through the reader wrapper instead."""

        def map(self, key, value):
            yield (key, value)

    def reader_with_mapping(split):
        mapper = RegionMapper(plan, split, op)
        for k, v in original_reader(split):
            yield from mapper.map(k, v)

    job.reader_factory = reader_with_mapping
    job.mapper_factory = _PerSplitMapper

    res = LocalEngine().run_serial(job, barrier)
    got = dict(res.all_records())

    # Explicit oracle (argmax needs coordinates, so reference_output
    # can't be used directly).
    mismatches = 0
    for key in got:
        region = plan.instance_region(key)
        cells = data[region.as_slices()]
        idx = np.unravel_index(int(np.argmax(cells)), cells.shape)
        coord = tuple(int(c + o) for c, o in zip(idx, region.corner))
        want = {"value": float(cells.max()), "at": coord}
        if got[key] != want:
            mismatches += 1
    print(f"\nmatched the explicit oracle on {len(got) - mismatches}/"
          f"{len(got)} instances")
    assert mismatches == 0

    hottest = max(got.items(), key=lambda kv: kv[1]["value"])
    print(f"hottest weekly reading: {hottest[1]['value']:.1f} degF at "
          f"(day, lat, lon) = {hottest[1]['at']} "
          f"(week {hottest[0][0]}, band {hottest[0][1]})")
    print(f"count-annotation validation passed for all "
          f"{sidr.num_reduce_tasks} reduce tasks")


if __name__ == "__main__":
    main()
