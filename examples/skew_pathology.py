#!/usr/bin/env python3
"""Intermediate key skew (paper §4.3 / Figure 13), demonstrated twice.

First at the partitioner level, for real: a down-sampling whose
intermediate keys are extraction-instance *corners* (all-even components
under a {2, 2} extraction shape) drives Hadoop's Java-style hash to a
single parity class — half the reduce tasks receive nothing, the other
half receive double.  partition+ distributes the same keys exactly evenly.

Then at cluster scale, in the simulator: the same imbalance turns into the
paper's Figure 13 completion profile — the idle half of the reduce tasks
commits immediately after the barrier while the loaded half runs ~2x long;
SIDR's balanced contiguous keyblocks finish the query far sooner (the
paper measured 42% faster).

Run:  python examples/skew_pathology.py
"""

from collections import Counter

import numpy as np

from repro.bench.figures import fig13_skew
from repro.mapreduce.partitioner import HashPartitioner, RangePartitioner
from repro.sidr.partition_plus import partition_plus


def main() -> None:
    # ------------------------------------------------------------------ #
    # Part 1: the hash pathology, measured on real keys.
    # ------------------------------------------------------------------ #
    r = 22
    space = (360, 180)  # K'_T of a {2,2} down-sample of a 720x360 grid
    keys = np.array(
        [(i, j) for i in range(space[0]) for j in range(space[1])],
        dtype=np.int64,
    )
    # SciHadoop's keys here are instance corners in K: all components even.
    corner_keys = keys * 2

    hash_part = HashPartitioner()
    assignments = hash_part.partition_many(corner_keys, r)
    loads = Counter(int(a) for a in assignments)
    print("== Hadoop hash partitioner on patterned (all-even) keys ==")
    print(f"  {len(keys):,} intermediate keys over {r} reduce tasks")
    idle = [l for l in range(r) if loads.get(l, 0) == 0]
    print(f"  reduce tasks receiving NOTHING : {idle}")
    busiest = max(loads.values())
    print(f"  busiest reduce task            : {busiest:,} keys "
          f"({busiest / (len(keys) / r):.1f}x its fair share)")

    part = partition_plus(space, r)
    rp = RangePartitioner(space, part.cell_boundaries())
    plus_loads = Counter(int(a) for a in rp.partition_many(keys, r))
    sizes = sorted(plus_loads.values())
    print("\n== partition+ on the same keyspace ==")
    print(f"  smallest/largest keyblock      : {sizes[0]:,} / {sizes[-1]:,} keys")
    print(f"  skew (max - min)               : {sizes[-1] - sizes[0]} keys "
          f"(bounded by one unit shape = {part.unit_shape})")

    # ------------------------------------------------------------------ #
    # Part 2: what the imbalance costs at cluster scale (Figure 13).
    # ------------------------------------------------------------------ #
    print("\n== Figure 13 at cluster scale (simulated, 1/10 data) ==")
    fig = fig13_skew(num_reduces=22, scale=10)
    stock = fig.summaries["stock"]
    sidr = fig.summaries["SIDR"]
    print(f"  stock (skewed)  : completes {stock['makespan']:7.0f}s")
    print(f"  SIDR (balanced) : completes {sidr['makespan']:7.0f}s")
    print(f"  -> SIDR {fig.notes['speedup']:.0%} of stock's time "
          f"({(fig.notes['speedup'] - 1):.0%} faster; paper: 42% at full scale)")
    curve = fig.curves["Reduce(stock,22)"]
    print(f"  stock completion profile: first half of tasks (the idle "
          f"parity class) done by {curve.times[0]:.0f}s, last task at "
          f"{curve.times[-1]:.0f}s")


if __name__ == "__main__":
    main()
