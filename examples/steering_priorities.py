#!/usr/bin/env python3
"""Computational steering via keyblock prioritization (paper §3.4).

"If the user believes that a certain portion of the output would likely
contain the salient result(s), those keyblocks can be scheduled first,
as opposed to waiting for them to be scheduled organically."

Scenario: a scientist is watching a windspeed simulation and cares about
the *last* weeks of the run (where the storm develops).  Stock scheduling
delivers keyblocks roughly in index order, so the interesting region
arrives last.  With SIDR priorities the region of interest is scheduled
first; the simulated cluster shows the interesting keyblocks completing
far earlier — the paper's burst-buffer scenario (grab the important
answers while the data is still on the staging nodes) follows the same
mechanics.

Run:  python examples/steering_priorities.py
"""

from repro.bench.workloads import SystemVariant, query1_workload, sim_spec
from repro.sim.cluster import ClusterConfig
from repro.sim.jobsim import ExecutionMode, simulate_job
from repro.sim.workload import SimJobSpec


def main() -> None:
    # 1/10-scale Query 1 for a fast demo; r=24 keyblocks.
    wl = query1_workload(scale=10)
    r = 24
    interesting = set(range(r - 4, r))  # the final 4 keyblocks (late weeks)

    base = sim_spec(wl, SystemVariant.SIDR, r)
    # Priorities: interesting blocks first (lower = earlier).
    priorities = tuple(
        0.0 if l in interesting else 1.0 for l in range(r)
    )
    steered = SimJobSpec(
        name=base.name + "-steered",
        splits=base.splits,
        distribution=base.distribution,
        reduce_output_bytes=base.reduce_output_bytes,
        dense_output=base.dense_output,
        reduce_weights=base.reduce_weights,
        priorities=priorities,
    )

    organic_tl = simulate_job(base, mode=ExecutionMode.SIDR, seed=0)
    steered_tl = simulate_job(steered, mode=ExecutionMode.SIDR, seed=0)

    def region_done(tl):
        return max(tl.reduce_finish[l] for l in interesting)

    print("== Steering the output region of interest ==")
    print(f"  keyblocks of interest : {sorted(interesting)} "
          f"(the final simulated weeks)")
    print(f"  organic scheduling    : region final at "
          f"{region_done(organic_tl):7.0f}s "
          f"(query completes {organic_tl.makespan:7.0f}s)")
    print(f"  prioritized scheduling: region final at "
          f"{region_done(steered_tl):7.0f}s "
          f"(query completes {steered_tl.makespan:7.0f}s)")
    speedup = region_done(organic_tl) / region_done(steered_tl)
    print(f"  -> region of interest available {speedup:.1f}x sooner")

    # The rest of the query is unharmed: total work is identical, only
    # the order changed.
    delta = abs(steered_tl.makespan - organic_tl.makespan)
    print(f"  total query time changed by only "
          f"{delta / organic_tl.makespan:.1%}")

    print("\n== Per-keyblock completion (first 6 and the steered 4) ==")
    for l in list(range(6)) + sorted(interesting):
        print(
            f"  keyblock {l:3d}: organic {organic_tl.reduce_finish[l]:7.0f}s"
            f"   steered {steered_tl.reduce_finish[l]:7.0f}s"
            f"{'   <- prioritized' if l in interesting else ''}"
        )


if __name__ == "__main__":
    main()
