#!/usr/bin/env python3
"""Query 2: threshold filtering with early, correct, partial results.

A 3-sigma outlier filter over a normally distributed sensor field (the
paper's Query 2: "returns only values more than three standard deviations
greater than the mean ... 0.1% of the total dataset").  The structural
part is the extraction shape: each output key covers one {2, 4, 4} block
of readings and carries the (possibly empty) list of outliers inside it
(§2.4.2: "a list of zero or more results may be produced").

The demo runs the query through SIDR with the count-annotation validator
enabled and then replays the engine trace through the EarlyResultTracker
to show the moment each output region became final — correct partial
results, not estimates (the §5 contrast with Hadoop Online).

Run:  python examples/filter_outliers.py
"""

import numpy as np

from repro import LocalEngine, StructuralQuery, build_sidr_job, slice_splits
from repro.query.operators import ThresholdFilterOp
from repro.scidata.generators import normal_dataset
from repro.sidr.early_results import EarlyResultTracker


def main() -> None:
    field = normal_dataset((48, 24, 24), var_name="reading", seed=42)
    data = field.arrays["reading"].astype(np.float64)

    query = StructuralQuery(
        variable="reading",
        extraction_shape=(2, 4, 4),
        operator=ThresholdFilterOp(threshold=3.0),
    )
    plan = query.compile(field.metadata)
    print("== Query ==")
    print(plan.describe())

    splits = slice_splits(plan, num_splits=12)
    job, barrier, sidr = build_sidr_job(
        plan, splits, num_reduce_tasks=6, source=data
    )
    res = LocalEngine().run_serial(job, barrier)

    got = dict(res.all_records())
    outliers = [(k, v) for k, v in got.items() if v]
    total_cells = plan.covered.volume
    total_outliers = sum(len(v) for v in got.values())
    print("\n== Results ==")
    print(f"  {total_outliers} outliers in {total_cells} readings "
          f"({total_outliers / total_cells:.3%}; 3-sigma expects ~0.135%)")
    for k, v in outliers[:5]:
        region = plan.instance_region(k)
        print(f"  region corner={list(region.corner)}: {[round(x, 2) for x in v]}")
    if len(outliers) > 5:
        print(f"  ... and {len(outliers) - 5} more regions with outliers")

    # ------------------------------------------------------------------ #
    # Early results: when did each output region become *final*?
    # ------------------------------------------------------------------ #
    tracker = EarlyResultTracker(sidr.deps, sidr.partition)
    print("\n== Early, correct, partial results (replaying the trace) ==")
    maps_done = 0
    for ev in res.trace.events:
        if ev.kind == "map" and ev.event == "finish":
            maps_done += 1
            for block in sorted(tracker.on_map_complete(ev.index)):
                frac = tracker.ready_fraction()
                print(
                    f"  after {maps_done:2d}/{len(splits)} maps: "
                    f"keyblock {block} final "
                    f"({frac:.0%} of output determined)"
                )
    validator = job.context["reduce_start_validator"]
    print(f"\ncount-annotation tallies validated for all "
          f"{len(validator.observed)} reduce starts "
          f"(paper §3.2.1 approach 2)")


if __name__ == "__main__":
    main()
