#!/usr/bin/env python3
"""Strided extraction: a weekend climatology (paper §2.4.2).

"Strided access (reading data at regularly spaced intervals) can be
described by adding an additional n-dimensional array indicating the
stride lengths between extraction shape instances."

Scenario: from a year of daily temperatures, compute the mean of only
the first 2 days of every 7-day week (a "weekend climatology"), at 5x
latitude down-sampling — extraction shape {2, 5, 1} with stride
{7, 5, 1}.  Cells in the gap (days 2-6 of each week) belong to no
intermediate key; the record reader never emits them and SIDR's
dependency analysis accounts only for the cells actually consumed.

Run:  python examples/strided_climatology.py
"""

import numpy as np

from repro import (
    LocalEngine,
    StructuralQuery,
    build_sidr_job,
    get_operator,
    slice_splits,
    temperature_dataset,
)


def main() -> None:
    field = temperature_dataset(days=365, lat=30, lon=20, seed=5)
    data = field.arrays["temperature"].astype(np.float64)

    query = StructuralQuery(
        variable="temperature",
        extraction_shape=(2, 5, 1),
        operator=get_operator("mean"),
        stride=(7, 5, 1),
    )
    plan = query.compile(field.metadata)
    print("== Strided query ==")
    print(plan.describe())
    consumed = plan.num_intermediate_keys * plan.cells_per_instance
    total = plan.subset.volume
    print(f"cells consumed: {consumed:,} of {total:,} "
          f"({consumed / total:.0%}; the stride skips weekdays)")

    splits = slice_splits(plan, num_splits=12)
    job, barrier, sidr = build_sidr_job(plan, splits, 4, data)
    res = LocalEngine().run_serial(job, barrier)

    oracle = plan.reference_output(data)
    got = dict(res.all_records())
    worst = max(abs(got[k] - oracle[k]) for k in oracle)
    assert worst < 1e-9
    print(f"\nSIDR output matches the serial oracle on all "
          f"{len(oracle)} keys (max |err| = {worst:.1e})")

    # The annual cycle shows up across week indices at a fixed location.
    lat_band, lon = 2, 10
    series = [got[(w, lat_band, lon)] for w in range(plan.intermediate_space[0])]
    print(f"\nweekend-mean series at lat band {lat_band}, lon {lon}:")
    coolest = int(np.argmin(series))
    warmest = int(np.argmax(series))
    for w in sorted({0, coolest, warmest, len(series) - 1}):
        marker = (
            " <- warmest" if w == warmest
            else " <- coolest" if w == coolest
            else ""
        )
        print(f"  week {w:2d}: {series[w]:6.2f} degF{marker}")
    print(f"\nseasonality check: warmest and coolest weeks are "
          f"{abs(warmest - coolest)} weeks apart (~half a year expected)")

    print(f"\nshuffle connections: {res.shuffle_connections} "
          f"(vs {len(splits) * 4} all-to-all)")


if __name__ == "__main__":
    main()
